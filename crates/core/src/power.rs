//! Movement-based power saving (Sec. 5.4).
//!
//! "If a client node fails to find an access point for association and it
//! receives a hint that it is not moving, it can power down its radio
//! until it next receives a movement hint. Similarly, if it receives a
//! speed hint that it is moving too fast for useful WiFi communication,
//! it can power down the radio until its speed decreases."
//!
//! The policy is a small state machine over the radio's power states; the
//! energy model uses representative 802.11 client powers so the
//! hint-aware policy's savings can be quantified against periodic
//! scanning.

use hint_sensors::hints::MobilityHints;
use hint_sim::{SimDuration, SimTime};

/// Radio power states with representative draw (milliwatts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RadioState {
    /// Radio powered down (hint-triggered).
    Sleep,
    /// Radio on, associated or idle-listening.
    Idle,
    /// Actively scanning for APs.
    Scanning,
}

impl RadioState {
    /// Representative power draw, mW (typical 802.11 client figures).
    pub fn power_mw(self) -> f64 {
        match self {
            RadioState::Sleep => 10.0,
            RadioState::Idle => 740.0,
            RadioState::Scanning => 1100.0,
        }
    }
}

/// Scan/sleep policies under comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PowerPolicy {
    /// Hint-oblivious: scan every `scan_interval` whenever unassociated.
    PeriodicScan {
        /// Time between scans.
        scan_interval: SimDuration,
    },
    /// Sec. 5.4: sleep while unassociated and not moving; sleep while
    /// moving faster than `max_useful_speed_mps`; otherwise scan
    /// periodically.
    HintAware {
        /// Time between scans while a scan could plausibly succeed.
        scan_interval: SimDuration,
        /// Above this speed, WiFi is useless — sleep (m/s).
        max_useful_speed_mps: f64,
    },
}

/// One decision step's outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerStep {
    /// The radio state chosen for this interval.
    pub state: RadioState,
    /// Whether a scan was initiated at the start of the interval.
    pub scanned: bool,
}

/// The power-policy state machine. Drive it with fixed ticks.
#[derive(Clone, Debug)]
pub struct PowerManager {
    policy: PowerPolicy,
    next_scan: SimTime,
    /// Total energy consumed so far, millijoules.
    energy_mj: f64,
    /// Total scans initiated.
    scans: u64,
}

impl PowerManager {
    /// Manager starting at time zero with no energy consumed.
    pub fn new(policy: PowerPolicy) -> Self {
        PowerManager {
            policy,
            next_scan: SimTime::ZERO,
            energy_mj: 0.0,
            scans: 0,
        }
    }

    /// Decide the radio state for the tick `[now, now + dt)` given the
    /// current hints and association status, charging energy accordingly.
    pub fn step(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        hints: &MobilityHints,
        associated: bool,
    ) -> PowerStep {
        let (state, scanned) = if associated {
            (RadioState::Idle, false)
        } else {
            match self.policy {
                PowerPolicy::PeriodicScan { scan_interval } => {
                    if now >= self.next_scan {
                        self.next_scan = now + scan_interval;
                        self.scans += 1;
                        (RadioState::Scanning, true)
                    } else {
                        (RadioState::Idle, false)
                    }
                }
                PowerPolicy::HintAware {
                    scan_interval,
                    max_useful_speed_mps,
                } => {
                    let moving = hints.is_moving();
                    let too_fast = hints
                        .speed
                        .map(|s| s.mps() > max_useful_speed_mps)
                        .unwrap_or(false);
                    if !moving || too_fast {
                        // Static with no AP in sight, or blasting down the
                        // highway: nothing a scan could change — sleep.
                        (RadioState::Sleep, false)
                    } else if now >= self.next_scan {
                        self.next_scan = now + scan_interval;
                        self.scans += 1;
                        (RadioState::Scanning, true)
                    } else {
                        (RadioState::Idle, false)
                    }
                }
            }
        };
        self.energy_mj += state.power_mw() * dt.as_secs_f64();
        PowerStep { state, scanned }
    }

    /// Total energy consumed, millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_mj
    }

    /// Total scans initiated.
    pub fn scans(&self) -> u64 {
        self.scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_sensors::hints::SpeedHint;

    fn hints(moving: bool, speed: Option<f64>) -> MobilityHints {
        let mut h = MobilityHints::movement_only(moving);
        h.speed = speed.map(SpeedHint::new);
        h
    }

    const TICK: SimDuration = SimDuration::from_millis(100);

    fn run(policy: PowerPolicy, secs: u64, h: MobilityHints, associated: bool) -> PowerManager {
        let mut pm = PowerManager::new(policy);
        for i in 0..(secs * 10) {
            pm.step(SimTime::from_micros(i * 100_000), TICK, &h, associated);
        }
        pm
    }

    #[test]
    fn associated_radio_idles_regardless_of_policy() {
        let mut pm = PowerManager::new(PowerPolicy::HintAware {
            scan_interval: SimDuration::from_secs(10),
            max_useful_speed_mps: 10.0,
        });
        let s = pm.step(SimTime::ZERO, TICK, &hints(false, None), true);
        assert_eq!(s.state, RadioState::Idle);
        assert!(!s.scanned);
    }

    #[test]
    fn static_unassociated_hint_aware_sleeps() {
        let hint_pm = run(
            PowerPolicy::HintAware {
                scan_interval: SimDuration::from_secs(10),
                max_useful_speed_mps: 10.0,
            },
            600,
            hints(false, None),
            false,
        );
        let periodic_pm = run(
            PowerPolicy::PeriodicScan {
                scan_interval: SimDuration::from_secs(10),
            },
            600,
            hints(false, None),
            false,
        );
        // Sec. 5.4's saving: sleeping at 10 mW vs idling/scanning at
        // 740+ mW is a >10x energy cut.
        assert!(
            hint_pm.energy_mj() * 10.0 < periodic_pm.energy_mj(),
            "hint {:.0} mJ vs periodic {:.0} mJ",
            hint_pm.energy_mj(),
            periodic_pm.energy_mj()
        );
        assert_eq!(hint_pm.scans(), 0, "no scans while static");
        assert!(periodic_pm.scans() >= 59);
    }

    #[test]
    fn movement_wakes_the_radio() {
        let mut pm = PowerManager::new(PowerPolicy::HintAware {
            scan_interval: SimDuration::from_secs(10),
            max_useful_speed_mps: 10.0,
        });
        let s = pm.step(SimTime::ZERO, TICK, &hints(false, None), false);
        assert_eq!(s.state, RadioState::Sleep);
        let s = pm.step(
            SimTime::from_millis(100),
            TICK,
            &hints(true, Some(1.4)),
            false,
        );
        assert_eq!(s.state, RadioState::Scanning);
        assert!(s.scanned);
    }

    #[test]
    fn highway_speed_sleeps_despite_movement() {
        let mut pm = PowerManager::new(PowerPolicy::HintAware {
            scan_interval: SimDuration::from_secs(10),
            max_useful_speed_mps: 10.0,
        });
        let s = pm.step(SimTime::ZERO, TICK, &hints(true, Some(30.0)), false);
        assert_eq!(s.state, RadioState::Sleep);
        // Slowing down re-enables scanning.
        let s = pm.step(
            SimTime::from_millis(100),
            TICK,
            &hints(true, Some(3.0)),
            false,
        );
        assert_eq!(s.state, RadioState::Scanning);
    }

    #[test]
    fn scan_cadence_respected_while_walking() {
        let pm = run(
            PowerPolicy::HintAware {
                scan_interval: SimDuration::from_secs(10),
                max_useful_speed_mps: 10.0,
            },
            100,
            hints(true, Some(1.4)),
            false,
        );
        // 100 s at one scan per 10 s.
        assert!((9..=11).contains(&pm.scans()), "scans {}", pm.scans());
    }
}
