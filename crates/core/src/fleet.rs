//! The fleet simulation engine: N mobile clients sharing M access
//! points, with sensor hints steering association, handoff, and rate
//! adaptation together.
//!
//! The paper evaluates the hint protocol per-link; its payoff at scale
//! shows up when many clients share APs (Sec. 5.2). This engine layers
//! the pieces the substrate crates already model:
//!
//! * **Association/handoff** — every scan interval each client scores
//!   the in-range APs under the spec's [`HandoffPolicy`]:
//!   signal-strength (baseline), predicted dwell from the movement hint
//!   (`hint_ap::association`), or dwell divided by the link's ETX
//!   (`hint_topology::etx`). Switches are gated by
//!   [`hint_ap::association::should_handoff`] hysteresis, so an
//!   unchanged scan can never ping-pong.
//! * **Hints** — each client runs the same hint pipeline as a
//!   single-link scenario ([`HintStream`]); the hint gates the dwell
//!   prediction (a client that believes it is static scores every
//!   covering AP as an infinite dwell and stays put) and rides frames to
//!   the AP, whose [`NeighborHints`] table decides how departures are
//!   handled (the Fig. 5-1 ghost-airtime model, `hint_ap`'s
//!   [`DisassociationPolicy`]).
//! * **Traffic** — every association span runs a real
//!   [`LinkSimulator`] over a trace whose mean SNR is offset by the
//!   client's distance from its AP, with a fresh adapter from the
//!   [`ProtocolRegistry`]; per-client results aggregate into the
//!   [`FleetOutcome`].
//!
//! Scan ticks flow through `hint-sim`'s [`EventQueue`], whose FIFO
//! ordering among simultaneous events pins the client processing order.
//! Every random stream derives from the fleet seed, so a fleet run is
//! **deterministic**: same spec + seed ⇒ byte-identical
//! [`FleetOutcome`], regardless of worker-thread count in the
//! surrounding battery.
//!
//! # Scaling to metro fleets
//!
//! The engine is built so that 1,000+ clients × 100+ APs stays in the
//! seconds range:
//!
//! * **Spatial AP index** — scans query a
//!   [`hint_topology::spatial::DiskIndex`] over the AP placements, so
//!   each scan considers only the APs whose coverage disks can contain
//!   the client instead of all M (exact-equivalent to the brute-force
//!   scan, property-tested in `hint-topology`).
//! * **Span arena + sharding** — Phase B flattens every association
//!   span into one task arena and [`FleetScenario::run_with_jobs`]
//!   shards it across a scoped worker pool. Each span's simulation is a
//!   pure function of the spec seed, and the per-client merge is a sum
//!   of integer counters (goodput is computed from the totals
//!   afterwards), so results can be folded in completion order: the
//!   outcome is **byte-identical for every worker count**.
//! * **Streaming accumulation** — span results merge into per-client
//!   running sums the moment they land; memory stays
//!   O(clients + APs + spans), never O(spans × trace length).

use crate::neighbors::NeighborHints;
use hint_ap::association::{predicted_dwell_s, should_handoff, ApCandidate, ClientMotion};
use hint_ap::disassociation::DisassociationPolicy;
use hint_channel::delivery::best_rate_for_snr;
use hint_channel::{delivery_table, Environment, Trace};
use hint_mac::contention::{AirtimeArbiter, ContentionParams, Station};
use hint_mac::hint_proto::HintField;
use hint_mac::{BitRate, MacTiming};
use hint_rateadapt::fleet::{
    jain_index, normalize_windows, ContentionMode, FleetApStats, FleetClientOutcome, FleetOutcome,
    FleetSpec, HandoffPolicy, STALE_HINT_HOLD,
};
use hint_rateadapt::protocols::registry::{AdapterFactory, ProtocolRegistry};
use hint_rateadapt::scenario::{HintSpec, ScenarioError, ScenarioOutcome, HINT_SEED_MASK};
use hint_rateadapt::{HintStream, LinkSimulator, SimResult, TraceSource, Workload};
use hint_sensors::gps::Position;
use hint_sensors::motion::{MotionProfile, MotionSegment};
use hint_sim::{EventQueue, RngStream, SimDuration, SimTime};
use hint_topology::spatial::{Disk, DiskIndex};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Assumed receiver noise floor, dBm: scan-time RSSI is the link's mean
/// SNR re-referenced to it.
pub const NOISE_FLOOR_DBM: f64 = -95.0;

/// Path-loss exponent of the coverage-disk link model (indoor-ish).
pub const PATH_LOSS_EXP: f64 = 2.7;

/// Commercial-default prune timeout for a silent client (Sec. 5.2.3's
/// "after about 10 seconds of getting no response, the AP pruned the
/// absent client").
const PRUNE_AFTER: SimDuration = SimDuration::from_secs(10);

/// Gentle probe cadence for hint-quarantined clients.
const PROBE_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// Largest scan-backoff exponent under fault injection: a dark client's
/// rescan interval doubles per failed attempt up to `scan_interval <<
/// MAX_SCAN_BACKOFF_EXP` (32×), then stays capped — the retry budget
/// that keeps a fault storm from melting the event loop while still
/// rejoining promptly after short outages. Fault-free runs keep the
/// fixed cadence, byte-identically to the pre-fault engine.
const MAX_SCAN_BACKOFF_EXP: u32 = 5;

/// Delivery-probability target used to pick a station's nominal
/// contention rate from its link SNR (the RBAR-style decision rule):
/// the arbiter needs a representative frame airtime per station before
/// the per-span traffic simulation has run.
const CONTENTION_RATE_TARGET: f64 = 0.9;

/// Mean SNR (dB) of a client↔AP link at distance `dist_m` from an AP
/// with usable radius `coverage_m`, in environment `env`: the
/// environment's operating point holds at a third of the coverage
/// radius and rolls off with [`PATH_LOSS_EXP`] toward the edge.
pub fn link_snr_db(env: &Environment, dist_m: f64, coverage_m: f64) -> f64 {
    let d_ref = (coverage_m / 3.0).max(1.0);
    env.base_snr_db + 10.0 * PATH_LOSS_EXP * (d_ref / dist_m.max(1.0)).log10()
}

// ---------------------------------------------------------------------------
// Client paths
// ---------------------------------------------------------------------------

/// A client's position over time: its start point plus the piecewise-
/// constant velocity schedule of its motion profile (headings are
/// degrees clockwise from north, as everywhere in the workspace).
#[derive(Clone, Debug)]
struct ClientPath {
    /// `(segment start time, position at that start, segment)`.
    legs: Vec<(SimTime, Position, MotionSegment)>,
}

impl ClientPath {
    fn new(start: Position, profile: &MotionProfile) -> Self {
        let mut legs = Vec::with_capacity(profile.segments().len());
        let mut t = SimTime::ZERO;
        let mut pos = start;
        for seg in profile.segments() {
            legs.push((t, pos, *seg));
            let dt = seg.duration.as_secs_f64();
            let v = seg.state.speed_mps();
            let h = seg.heading_deg.to_radians();
            pos = Position {
                x: pos.x + v * dt * h.sin(),
                y: pos.y + v * dt * h.cos(),
            };
            t += seg.duration;
        }
        ClientPath { legs }
    }

    /// Position at `t` (the last segment extends forever, matching
    /// [`MotionProfile`] query semantics).
    fn position_at(&self, t: SimTime) -> Position {
        let (leg_t, leg_pos, seg) = self
            .legs
            .iter()
            .rev()
            .find(|(start, _, _)| *start <= t)
            // detlint::allow(PANIC001): ClientPath::new pushes one leg per
            // motion segment and MotionProfile guarantees >= 1 segment
            .expect("paths have >= 1 leg");
        let dt = t.saturating_since(*leg_t).as_secs_f64();
        let v = seg.state.speed_mps();
        let h = seg.heading_deg.to_radians();
        Position {
            x: leg_pos.x + v * dt * h.sin(),
            y: leg_pos.y + v * dt * h.cos(),
        }
    }
}

/// The sub-profile of `profile` covering `[from, from + span)`, for
/// generating an association span's channel trace. The last segment
/// extends forever, as in [`MotionProfile`] queries.
fn slice_profile(profile: &MotionProfile, from: SimTime, span: SimDuration) -> MotionProfile {
    let mut out: Vec<MotionSegment> = Vec::new();
    let mut remaining = span;
    let mut cursor = SimTime::ZERO;
    for seg in profile.segments() {
        let seg_end = cursor + seg.duration;
        if seg_end > from && !remaining.is_zero() {
            let start_in_seg = if from > cursor {
                from.saturating_since(cursor)
            } else {
                SimDuration::ZERO
            };
            let avail = seg.duration - start_in_seg;
            let take = if avail < remaining { avail } else { remaining };
            if !take.is_zero() {
                out.push(MotionSegment {
                    duration: take,
                    ..*seg
                });
                remaining -= take;
            }
        }
        cursor = seg_end;
    }
    if !remaining.is_zero() {
        // Past the schedule: the last segment's state continues.
        // detlint::allow(PANIC001): MotionProfile::new rejects empty schedules
        let last = *profile.segments().last().expect("non-empty profile");
        out.push(MotionSegment {
            duration: remaining,
            ..last
        });
    }
    MotionProfile::new(out)
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

/// The compiled fault schedule: per-entity sorted, disjoint, half-open
/// time windows, resolved once at compile time (random storms included)
/// so every engine query is a cheap lookup and every worker sees the
/// same schedule.
#[derive(Clone, Debug)]
struct ResolvedFaults {
    /// Per-AP down windows.
    ap_down: Vec<Vec<(SimTime, SimTime)>>,
    /// Per-client hint-dropout windows.
    hint_off: Vec<Vec<(SimTime, SimTime)>>,
    /// Per-client radio-blackout windows.
    blackout: Vec<Vec<(SimTime, SimTime)>>,
    /// Whether hint policies fall back to RSSI once a dropout goes
    /// stale (`false` is the naive hint-trusting ablation).
    hint_fallback: bool,
    /// Whether any window exists at all. `false` takes the exact
    /// pre-fault code paths, so a fault-free `FaultSpec` run is
    /// byte-identical to a run with no `FaultSpec` present.
    active: bool,
}

/// A client's hint-pipeline health at one instant, under the
/// stale-then-none dropout model.
enum HintHealth {
    /// No dropout: serve live hints.
    Fresh,
    /// Dropped out within [`STALE_HINT_HOLD`]: serve the reading frozen
    /// at the dropout start (carried in the variant).
    Stale(SimTime),
    /// Dropped out past the hold: hints unavailable; hint policies fall
    /// back to legacy RSSI scoring until the stream recovers.
    Down,
}

impl ResolvedFaults {
    /// Resolve `spec.faults` (already validated) against the run: clip
    /// every window to the run duration, expand the seeded random-outage
    /// storm, then normalize per entity.
    fn resolve(spec: &FleetSpec) -> ResolvedFaults {
        let end = SimTime::ZERO + spec.duration;
        let clip = |start: SimDuration, dur: SimDuration| {
            let s = SimTime::ZERO + start;
            let e_us = s
                .as_micros()
                .saturating_add(dur.as_micros())
                .min(end.as_micros());
            (s, SimTime::from_micros(e_us))
        };
        let mut ap_down: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); spec.aps.len()];
        for o in &spec.faults.ap_outages {
            ap_down[o.ap].push(clip(o.start, o.duration));
        }
        if let Some(storm) = &spec.faults.random_outages {
            // The storm stream derives fleet-seed → "fleet-fault", so it
            // is independent of every other stream in the run and
            // identical across replays.
            let mut rng = RngStream::new(spec.seed).derive("fleet-fault");
            let span_us = storm
                .max_duration
                .as_micros()
                .saturating_sub(storm.min_duration.as_micros());
            for _ in 0..storm.count {
                let ap = ((rng.uniform() * spec.aps.len() as f64) as usize)
                    .min(spec.aps.len().saturating_sub(1));
                let start_us = (rng.uniform() * spec.duration.as_micros() as f64) as u64;
                let dur_us = storm
                    .min_duration
                    .as_micros()
                    .saturating_add((rng.uniform() * span_us as f64) as u64);
                ap_down[ap].push(clip(
                    SimDuration::from_micros(start_us),
                    SimDuration::from_micros(dur_us),
                ));
            }
        }
        let mut hint_off: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); spec.clients.len()];
        for d in &spec.faults.hint_dropouts {
            hint_off[d.client].push(clip(d.start, d.duration));
        }
        let mut blackout: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); spec.clients.len()];
        for b in &spec.faults.radio_blackouts {
            blackout[b.client].push(clip(b.start, b.duration));
        }
        let ap_down: Vec<_> = ap_down.into_iter().map(normalize_windows).collect();
        let hint_off: Vec<_> = hint_off.into_iter().map(normalize_windows).collect();
        let blackout: Vec<_> = blackout.into_iter().map(normalize_windows).collect();
        let active = ap_down
            .iter()
            .chain(&hint_off)
            .chain(&blackout)
            .any(|w| !w.is_empty());
        ResolvedFaults {
            ap_down,
            hint_off,
            blackout,
            hint_fallback: spec.faults.hint_fallback,
            active,
        }
    }

    /// The window of `wins` containing `t`, if any (windows are sorted
    /// and disjoint, and per-entity counts are tiny, so a linear scan
    /// wins over binary search).
    fn window_at(wins: &[(SimTime, SimTime)], t: SimTime) -> Option<(SimTime, SimTime)> {
        wins.iter().copied().find(|&(s, e)| s <= t && t < e)
    }

    /// Is AP `ap` down at `t`?
    fn ap_down(&self, ap: usize, t: SimTime) -> bool {
        Self::window_at(&self.ap_down[ap], t).is_some()
    }

    /// Is client `c`'s radio off at `t`?
    fn blacked_out(&self, c: usize, t: SimTime) -> bool {
        Self::window_at(&self.blackout[c], t).is_some()
    }

    /// Client `c`'s hint-pipeline health at `t`.
    fn hint_health(&self, c: usize, t: SimTime) -> HintHealth {
        match Self::window_at(&self.hint_off[c], t) {
            None => HintHealth::Fresh,
            Some((s, _)) if t < s + STALE_HINT_HOLD => HintHealth::Stale(s),
            Some((s, _)) if !self.hint_fallback => HintHealth::Stale(s),
            Some(_) => HintHealth::Down,
        }
    }

    /// Total length of `wins`, seconds.
    fn total_s(wins: &[(SimTime, SimTime)]) -> f64 {
        wins.iter()
            .map(|&(s, e)| e.saturating_since(s).as_secs_f64())
            .sum()
    }

    /// Seconds client `c` spent past the stale hold of a hint dropout —
    /// the time a hint policy ran in RSSI fallback (zero for the naive
    /// ablation, which keeps trusting the frozen reading instead).
    fn fallback_s(&self, c: usize) -> f64 {
        if !self.hint_fallback {
            return 0.0;
        }
        self.hint_off[c]
            .iter()
            .map(|&(s, e)| e.saturating_since(s + STALE_HINT_HOLD).as_secs_f64())
            .sum()
    }
}

/// Ghost airtime an AP burns on a client that vanished silently at
/// `now` — the Fig. 5-1 model: open-loop blasting until the prune
/// timeout, or occasional probes if the AP heard a movement hint (the
/// same accounting the coverage-loss scan path applies).
fn ghost_airtime_s(
    table: &NeighborHints<usize>,
    c: usize,
    now: SimTime,
    end: SimTime,
    probe_airtime_s: f64,
) -> f64 {
    let ghost_policy = if table.is_moving(c) {
        DisassociationPolicy::HintAware {
            probe_interval: PROBE_INTERVAL,
        }
    } else {
        DisassociationPolicy::Timeout {
            prune_after: PRUNE_AFTER,
        }
    };
    let window = end.saturating_since(now).min(PRUNE_AFTER);
    match ghost_policy {
        DisassociationPolicy::Timeout { .. } => window.as_secs_f64(),
        DisassociationPolicy::HintAware { probe_interval } => {
            let probes = (window.as_secs_f64() / probe_interval.as_secs_f64()).ceil();
            probes * probe_airtime_s
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled fleet
// ---------------------------------------------------------------------------

/// A compiled, runnable fleet scenario. Owns the per-client motion
/// profiles, paths, and full-run hint streams; [`FleetScenario::run`]
/// replays the whole fleet deterministically from the spec seed.
pub struct FleetScenario {
    spec: FleetSpec,
    env: Environment,
    policy: HandoffPolicy,
    contention: ContentionMode,
    arbiter_params: ContentionParams,
    protocol_name: String,
    factory: AdapterFactory,
    profiles: Vec<MotionProfile>,
    paths: Vec<ClientPath>,
    /// Per-client workloads with trace-file sources resolved inline at
    /// compile time (span simulation never touches the filesystem).
    workloads: Vec<Workload>,
    /// Full-duration hint stream per client (`None` for hint-oblivious
    /// fleets) — drives the association/handoff decisions.
    hints: Vec<Option<HintStream>>,
    /// Per-client root seeds, derived from the fleet seed.
    client_seeds: Vec<u64>,
    /// Spatial index over the AP coverage disks: scans query it instead
    /// of testing every AP (exact-equivalent, so outcomes are unchanged).
    index: DiskIndex,
    /// Resolved fault schedule (empty and inert for fault-free specs).
    faults: ResolvedFaults,
}

/// One scheduled engine event (the queue also pins the FIFO order of
/// same-instant scans, which is what makes the run order deterministic).
#[derive(Clone, Copy, Debug)]
enum FleetEvent {
    /// The given client re-evaluates its association.
    Scan(usize),
    /// The given AP fails (fault schedule): evict its clients.
    ApDown(usize),
    /// The given client's radio dies (fault schedule).
    BlackoutStart(usize),
    /// The given client's radio recovers (fault schedule).
    BlackoutEnd(usize),
}

/// Per-client association bookkeeping during the event phase.
struct ClientRun {
    current: Option<usize>,
    /// When the current association became active.
    span_start: SimTime,
    /// When the client last became unassociated (for outage accounting).
    dark_since: Option<SimTime>,
    /// Closed spans: `(from, to, ap)`.
    spans: Vec<(SimTime, SimTime, usize)>,
    aps_visited: Vec<usize>,
    handoffs: u32,
    forced_handoffs: u32,
    /// A coverage loss happened and the next association should count
    /// as a forced handoff.
    pending_forced: bool,
    outage: SimDuration,
    /// The one scan instant currently considered live. Fault handling
    /// reschedules scans out from under the queued chain; a queued scan
    /// arriving at any other instant is stale and is dropped (only
    /// consulted when the fault schedule is active).
    next_scan: SimTime,
    /// Consecutive failed rescans while dark — drives the exponential
    /// backoff (fault-injected runs only).
    backoff_exp: u32,
    /// Rescans performed while unassociated (resilience metric).
    scan_retries: u32,
}

/// One association span's traffic simulation, as an arena entry Phase B
/// can hand to any worker: everything a simulation needs is derived
/// from these fields plus the (shared, read-only) compiled fleet.
#[derive(Clone, Copy, Debug)]
struct SpanTask {
    client: usize,
    /// Span ordinal within the client — derives the span seed.
    span_idx: usize,
    from: SimTime,
    to: SimTime,
    ap: usize,
}

/// Fold one span's simulation result into its client's running sums.
/// Every operation is a commutative integer addition (goodput is
/// computed from the totals after all spans land), so the fold order —
/// and hence the worker count — cannot affect the outcome.
fn merge_span(merged: &mut SimResult, from: SimTime, result: &SimResult) {
    merged.packets_sent += result.packets_sent;
    merged.packets_delivered += result.packets_delivered;
    merged.attempts += result.attempts;
    for (u, &n) in merged.rate_usage.iter_mut().zip(result.rate_usage.iter()) {
        *u += n;
    }
    merged.backhaul_dropped += result.backhaul_dropped;
    let offset_s = (from.as_micros() / 1_000_000) as usize;
    for (s, &n) in result.delivered_per_second.iter().enumerate() {
        if let Some(slot) = merged.delivered_per_second.get_mut(offset_s + s) {
            *slot += n;
        }
    }
}

impl FleetScenario {
    /// Validate and compile `spec` against the builtin protocol
    /// registry.
    pub fn compile(spec: &FleetSpec) -> Result<FleetScenario, ScenarioError> {
        Self::compile_with(spec, ProtocolRegistry::builtin_shared())
    }

    /// Validate and compile against an explicit registry (custom
    /// protocols).
    pub fn compile_with(
        spec: &FleetSpec,
        registry: &ProtocolRegistry,
    ) -> Result<FleetScenario, ScenarioError> {
        spec.validate_with(registry)?;
        let env = spec.environment.resolve();
        let policy = spec.policy().expect("validated above"); // detlint::allow(PANIC001): validate_with succeeded two lines up
        let contention = spec.contention().expect("validated above"); // detlint::allow(PANIC001): validate_with succeeded above
        let arbiter_params = ContentionParams {
            slot: spec.medium.slot,
            difs: spec.medium.difs,
            cw_min: spec.medium.cw_min,
            cw_max: spec.medium.cw_max,
            ..ContentionParams::ieee80211a()
        };
        let protocol_name = registry
            .canonical_name(&spec.protocol.name)
            // detlint::allow(PANIC001): validate_with resolved this name above
            .expect("validated above")
            .to_string();
        let factory = registry
            .factory(&spec.protocol.name)
            // detlint::allow(PANIC001): validate_with resolved this name above
            .expect("validated above");

        let root = RngStream::new(spec.seed);
        let mut profiles = Vec::with_capacity(spec.clients.len());
        let mut paths = Vec::with_capacity(spec.clients.len());
        let mut hints = Vec::with_capacity(spec.clients.len());
        let mut client_seeds = Vec::with_capacity(spec.clients.len());
        let mut workloads = Vec::with_capacity(spec.clients.len());
        for (i, client) in spec.clients.iter().enumerate() {
            workloads.push(
                client
                    .workload
                    .resolve()
                    .map_err(|e| ScenarioError::BadWorkload(format!("client {i}: {e}")))?,
            );
            let seed = root.derive_idx("fleet-client", i as u64).seed();
            let profile = client.motion.profile(spec.duration);
            let stream = match &spec.hints {
                HintSpec::None => None,
                HintSpec::Oracle { latency } => {
                    Some(HintStream::oracle(&profile, spec.duration, *latency))
                }
                HintSpec::Sensors { seed: explicit } => {
                    // Per-client accelerometer noise: the fleet-level
                    // explicit seed (if any) is mixed per client so two
                    // clients never share a noise stream.
                    let hint_seed = match explicit {
                        Some(s) => RngStream::new(*s)
                            .derive_idx("fleet-hints", i as u64)
                            .seed(),
                        None => seed ^ HINT_SEED_MASK,
                    };
                    Some(HintStream::from_sensors(&profile, spec.duration, hint_seed))
                }
            };
            paths.push(ClientPath::new(
                Position {
                    x: client.start_x_m,
                    y: client.start_y_m,
                },
                &profile,
            ));
            profiles.push(profile);
            hints.push(stream);
            client_seeds.push(seed);
        }
        let index = DiskIndex::build(
            spec.aps
                .iter()
                .map(|ap| Disk {
                    x: ap.x_m,
                    y: ap.y_m,
                    r: ap.coverage_m,
                })
                .collect(),
        );
        let faults = ResolvedFaults::resolve(spec);
        Ok(FleetScenario {
            spec: spec.clone(),
            env,
            policy,
            contention,
            arbiter_params,
            protocol_name,
            factory,
            profiles,
            paths,
            workloads,
            hints,
            client_seeds,
            index,
            faults,
        })
    }

    /// The spec this fleet was compiled from.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The resolved channel environment.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// The canonical name of the protocol every client runs.
    pub fn protocol_name(&self) -> &str {
        &self.protocol_name
    }

    /// Scan-time candidate list: every AP whose coverage disk contains
    /// `pos` **and is up at `now`**, with model RSSI, ascending by AP
    /// id. The spatial index narrows the scan to the APs near `pos`;
    /// the final containment test re-runs the engine's own distance
    /// predicate, and the down-AP filter applies *after* the index
    /// query, so the set is byte-identical to a brute-force scan over
    /// all APs with the same filter (the index's brute-force-equivalence
    /// property is untouched). Both buffers are caller-owned scratch,
    /// reused across every scan of the run.
    fn candidates_into(
        &self,
        pos: Position,
        now: SimTime,
        ids: &mut Vec<usize>,
        out: &mut Vec<ApCandidate>,
    ) {
        self.index.covering_into(pos.x, pos.y, ids);
        out.clear();
        out.extend(ids.iter().filter_map(|&id| {
            if self.faults.active && self.faults.ap_down(id, now) {
                return None;
            }
            let ap = &self.spec.aps[id];
            let ap_pos = Position {
                x: ap.x_m,
                y: ap.y_m,
            };
            let dist = pos.distance(ap_pos);
            (dist <= ap.coverage_m).then(|| ApCandidate {
                id,
                position: ap_pos,
                rssi_dbm: NOISE_FLOOR_DBM + link_snr_db(&self.env, dist, ap.coverage_m),
                coverage_m: ap.coverage_m,
            })
        }));
    }

    /// Score one candidate under `policy` (normally the fleet's handoff
    /// policy; legacy RSSI while a client's hints are dropped out).
    /// Signal scores are dBm; hint scores are predicted dwell seconds,
    /// optionally divided by the candidate link's ETX.
    fn score(&self, policy: HandoffPolicy, ap: &ApCandidate, client: &ClientMotion) -> f64 {
        match policy {
            HandoffPolicy::StrongestSignal => ap.rssi_dbm,
            HandoffPolicy::HintAware => predicted_dwell_s(ap, client),
            HandoffPolicy::HintEtx => {
                let snr = ap.rssi_dbm - NOISE_FLOOR_DBM;
                let p = delivery_table().prob_1000(BitRate::R6, snr);
                predicted_dwell_s(ap, client) / hint_topology::etx::etx(p)
            }
        }
    }

    /// The best candidate and its score (ties broken by RSSI, then by
    /// the stable candidate order).
    fn best_candidate(
        &self,
        policy: HandoffPolicy,
        candidates: &[ApCandidate],
        client: &ClientMotion,
    ) -> Option<(usize, f64)> {
        candidates
            .iter()
            .map(|ap| (ap.id, self.score(policy, ap, client), ap.rssi_dbm))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(a.2.total_cmp(&b.2)))
            .map(|(id, score, _)| (id, score))
    }

    /// Run the fleet. Each call replays the identical experiment: every
    /// stream is re-derived from the spec seed.
    pub fn run(&self) -> FleetOutcome {
        self.run_with_jobs(1)
    }

    /// Run the fleet with `jobs` worker threads sharding the span
    /// traffic simulations (Phase B). The association event loop and the
    /// medium arbitration stay serial — they are a tiny fraction of the
    /// runtime — while every association span's [`LinkSimulator`] run is
    /// a pure function of the spec seed and so shards freely. Span
    /// results stream into per-client running sums whose merge is
    /// commutative integer addition, which makes the outcome
    /// **byte-identical for every `jobs` value**; `jobs == 1` (what
    /// [`FleetScenario::run`] uses) takes a pool-free serial path.
    ///
    /// # Panics
    ///
    /// Panics when `jobs == 0`.
    pub fn run_with_jobs(&self, jobs: usize) -> FleetOutcome {
        assert!(jobs >= 1, "jobs must be >= 1");
        let n_clients = self.spec.clients.len();
        let n_aps = self.spec.aps.len();
        let duration = self.spec.duration;
        let end = SimTime::ZERO + duration;
        let reassoc = self.spec.handoff.reassociation_cost;
        let margin = self.spec.handoff.hysteresis;
        let client_hints_on = !matches!(self.spec.hints, HintSpec::None);

        // ------------------------------------------------------------------
        // Phase A: the association/handoff event loop.
        // ------------------------------------------------------------------
        let mut runs: Vec<ClientRun> = (0..n_clients)
            .map(|_| ClientRun {
                current: None,
                span_start: SimTime::ZERO,
                dark_since: Some(SimTime::ZERO),
                spans: Vec::new(),
                aps_visited: Vec::new(),
                handoffs: 0,
                forced_handoffs: 0,
                pending_forced: false,
                outage: SimDuration::ZERO,
                next_scan: SimTime::ZERO,
                backoff_exp: 0,
                scan_retries: 0,
            })
            .collect();
        // AP-side hint tables (fed by frames, as in `neighbors`) and
        // ghost-airtime accounting.
        let mut ap_tables: Vec<NeighborHints<usize>> =
            (0..n_aps).map(|_| NeighborHints::new()).collect();
        let mut ap_assoc_s = vec![0.0f64; n_aps];
        let mut ap_handoffs_in = vec![0u32; n_aps];
        let mut ap_wasted_s = vec![0.0f64; n_aps];
        let mut ap_evictions = vec![0u32; n_aps];
        let probe_airtime_s = MacTiming::ieee80211a()
            .exchange_airtime(BitRate::R6, self.spec.payload_bytes)
            .as_secs_f64();

        let has_faults = self.faults.active;
        let mut queue: EventQueue<FleetEvent> = EventQueue::new();
        for c in 0..n_clients {
            queue.schedule(SimTime::ZERO, FleetEvent::Scan(c));
        }
        if has_faults {
            // Window *starts* become events (evictions and radio deaths
            // must interrupt associations mid-span); recoveries matter
            // only to the affected client's own scan chain. Every window
            // start precedes the run end by validation + clipping.
            for (a, wins) in self.faults.ap_down.iter().enumerate() {
                for &(s, _) in wins {
                    queue.schedule(s, FleetEvent::ApDown(a));
                }
            }
            for (c, wins) in self.faults.blackout.iter().enumerate() {
                for &(s, e) in wins {
                    queue.schedule(s, FleetEvent::BlackoutStart(c));
                    if e < end {
                        queue.schedule(e, FleetEvent::BlackoutEnd(c));
                    }
                }
            }
        }
        // Scan scratch, reused across every event (no per-scan allocs).
        let mut cand_ids: Vec<usize> = Vec::new();
        let mut candidates: Vec<ApCandidate> = Vec::new();
        while let Some(ev) = queue.pop() {
            let now = ev.at;
            let c = match ev.event {
                FleetEvent::Scan(c) => c,
                FleetEvent::ApDown(a) => {
                    // Evict every associated client: close its span at
                    // the exact outage boundary (Phase B then never
                    // simulates traffic across it) and rescan at once.
                    // The AP is *off*, so unlike a silent departure it
                    // burns no ghost airtime on the evicted clients.
                    for (c, run) in runs.iter_mut().enumerate() {
                        if run.current != Some(a) {
                            continue;
                        }
                        if now > run.span_start {
                            run.spans.push((run.span_start, now, a));
                        }
                        ap_evictions[a] += 1;
                        run.pending_forced = true;
                        run.current = None;
                        // A client evicted mid-reassociation was already
                        // charged outage through span_start.
                        run.dark_since = Some(now.max(run.span_start));
                        run.backoff_exp = 0;
                        run.next_scan = now;
                        queue.schedule(now, FleetEvent::Scan(c));
                    }
                    continue;
                }
                FleetEvent::BlackoutStart(c) => {
                    let run = &mut runs[c];
                    if let Some(cur) = run.current {
                        // The radio dies mid-association: the AP sees a
                        // silent departure and burns the usual ghost
                        // window on it.
                        if now > run.span_start {
                            run.spans.push((run.span_start, now, cur));
                        }
                        ap_wasted_s[cur] +=
                            ghost_airtime_s(&ap_tables[cur], c, now, end, probe_airtime_s);
                        run.pending_forced = true;
                        run.current = None;
                        run.dark_since = Some(now.max(run.span_start));
                    }
                    // No scans while the radio is off: BlackoutEnd
                    // revives the chain; anything already queued goes
                    // stale via next_scan.
                    continue;
                }
                FleetEvent::BlackoutEnd(c) => {
                    let run = &mut runs[c];
                    run.backoff_exp = 0;
                    run.next_scan = now;
                    queue.schedule(now, FleetEvent::Scan(c));
                    continue;
                }
            };
            if has_faults {
                // Drop stale scan-chain events (fault handling moved the
                // chain) and scans that land inside a radio blackout.
                if now != runs[c].next_scan || self.faults.blacked_out(c, now) {
                    continue;
                }
            }
            let was_dark = runs[c].current.is_none();
            let pos = self.paths[c].position_at(now);
            // Hint health gates everything hint-flavoured this scan:
            // fresh streams serve live readings, stale ones serve the
            // reading frozen at the dropout start, and a stream past the
            // stale hold is down — the client stops claiming hints and
            // (the graceful-degradation headline) hint-aware policies
            // fall back to legacy RSSI scoring until it recovers.
            let health = if has_faults {
                self.faults.hint_health(c, now)
            } else {
                HintHealth::Fresh
            };
            let (moving, hints_down) = match (&self.hints[c], &health) {
                (None, _) => (false, false),
                (Some(h), HintHealth::Fresh) => (h.query(now), false),
                (Some(h), HintHealth::Stale(s)) => (h.query(*s), false),
                (Some(_), HintHealth::Down) => (false, true),
            };
            let policy = if hints_down {
                HandoffPolicy::StrongestSignal
            } else {
                self.policy
            };
            let profile = &self.profiles[c];
            let client = ClientMotion {
                position: pos,
                moving,
                heading_deg: profile.heading_at(now),
                speed_mps: if moving { profile.speed_at(now) } else { 0.0 },
            };
            self.candidates_into(pos, now, &mut cand_ids, &mut candidates);

            // The client tells its AP about its movement on every scan
            // frame (legacy fleets send no hint field, only presence —
            // and neither does a client whose hint stream is down).
            let run = &mut runs[c];
            if let Some(cur) = run.current {
                let field = if client_hints_on && !hints_down {
                    HintField::movement(moving)
                } else {
                    HintField::legacy()
                };
                ap_tables[cur].on_frame(c, now, &field);
            }

            // Score the incumbent: out of coverage scores as "no link".
            let cur_score = run.current.and_then(|cur| {
                candidates
                    .iter()
                    .find(|ap| ap.id == cur)
                    .map(|ap| self.score(policy, ap, &client))
            });
            let best = self.best_candidate(policy, &candidates, &client);

            match (run.current, best) {
                (Some(cur), _) if cur_score.is_none() => {
                    // Coverage lost. Close the span; charge the old AP
                    // the Fig. 5-1 ghost window: open-loop blasting until
                    // the prune timeout for a silent departure, or
                    // occasional probes if the AP heard a movement hint.
                    run.spans.push((run.span_start, now, cur));
                    ap_wasted_s[cur] +=
                        ghost_airtime_s(&ap_tables[cur], c, now, end, probe_airtime_s);
                    run.pending_forced = true;
                    run.current = None;
                    run.dark_since = Some(now);
                    // Fall through to (None, best) handling on the NEXT
                    // scan only if no candidate exists now; otherwise
                    // re-associate immediately below.
                    if let Some((best_id, best_score)) = best {
                        if should_handoff(None, best_score, margin)
                            && self.associate(run, best_id, now, reassoc, end)
                        {
                            ap_handoffs_in[best_id] += 1;
                        }
                    }
                }
                (Some(cur), Some((best_id, best_score)))
                    if best_id != cur && should_handoff(cur_score, best_score, margin) =>
                {
                    // Hint-led (voluntary) handoff: the old link still
                    // works, the AP is told, no ghost window.
                    run.spans.push((run.span_start, now, cur));
                    if self.associate(run, best_id, now, reassoc, end) {
                        ap_handoffs_in[best_id] += 1;
                    }
                }
                (None, Some((best_id, best_score))) if should_handoff(None, best_score, margin) => {
                    // (associate() has side effects, so it must not move
                    // into the match guard.)
                    let recorded = self.associate(run, best_id, now, reassoc, end);
                    if recorded {
                        ap_handoffs_in[best_id] += 1;
                    }
                }
                _ => {}
            }

            // Chain the next scan. Fault-free runs keep the fixed
            // cadence (byte-identical to the pre-fault engine);
            // fault-injected runs back off exponentially while a client
            // stays dark, up to the capped retry interval.
            let interval = if has_faults {
                let run = &mut runs[c];
                if run.current.is_none() {
                    if was_dark {
                        run.scan_retries += 1;
                    }
                    let mult = 1u64 << run.backoff_exp.min(MAX_SCAN_BACKOFF_EXP);
                    run.backoff_exp = (run.backoff_exp + 1).min(MAX_SCAN_BACKOFF_EXP);
                    self.spec.handoff.scan_interval * mult
                } else {
                    run.backoff_exp = 0;
                    self.spec.handoff.scan_interval
                }
            } else {
                self.spec.handoff.scan_interval
            };
            let next = now + interval;
            if next < end {
                runs[c].next_scan = next;
                queue.schedule(next, FleetEvent::Scan(c));
            }
        }

        // Close out the run: final spans and trailing outage.
        for run in runs.iter_mut() {
            match run.current {
                Some(cur) if run.span_start < end => {
                    run.spans.push((run.span_start, end, cur));
                }
                _ => {}
            }
            if let Some(dark) = run.dark_since.take() {
                if run.current.is_none() {
                    run.outage += end.saturating_since(dark);
                }
            }
        }

        // ------------------------------------------------------------------
        // Phase A': shared-medium arbitration. With `contention: shared`,
        // every (AP, scheduling epoch) whose association spans put two or
        // more clients on one medium runs the CSMA/CA arbiter; each
        // client's granted airtime becomes a per-second share that
        // throttles its span traffic in Phase B. Epochs with at most one
        // client bypass the arbiter (the paper's uncontended back-to-back
        // sender), so a one-client fleet behaves like an isolated one.
        // ------------------------------------------------------------------
        // A BTreeMap (not a hash map): Phase B only point-reads it, but
        // an ordered map keeps any future traversal deterministic by
        // construction — the byte-identical contract `detlint` enforces.
        let mut epoch_shares: BTreeMap<(usize, u64, usize), f64> = BTreeMap::new();
        let mut ap_busy_s = vec![0.0f64; n_aps];
        let mut ap_collision_s = vec![0.0f64; n_aps];
        let mut ap_collisions = vec![0u32; n_aps];
        let epoch_us = self.spec.medium.epoch.as_micros();
        if self.contention == ContentionMode::Shared {
            let mut ap_spans: Vec<Vec<(usize, SimTime, SimTime)>> = vec![Vec::new(); n_aps];
            for (c, run) in runs.iter().enumerate() {
                for &(from, to, ap) in &run.spans {
                    if to > from {
                        ap_spans[ap].push((c, from, to));
                    }
                }
            }
            let medium_root = RngStream::new(self.spec.seed).derive("fleet-medium");
            let arbiter = AirtimeArbiter::new(self.arbiter_params);
            let n_epochs = duration.as_micros().div_ceil(epoch_us);
            for (a, spans) in ap_spans.iter().enumerate() {
                if spans.is_empty() {
                    continue;
                }
                let ap_pos = Position {
                    x: self.spec.aps[a].x_m,
                    y: self.spec.aps[a].y_m,
                };
                for e in 0..n_epochs {
                    let e_start = e * epoch_us;
                    let e_end = ((e + 1) * epoch_us).min(duration.as_micros());
                    // Per-client association window inside this epoch
                    // (multiple spans merge to their envelope), in client
                    // order so station indices are deterministic.
                    let mut windows: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
                    for &(c, from, to) in spans {
                        let f = from.as_micros().max(e_start);
                        let t = to.as_micros().min(e_end);
                        if t > f {
                            let w = windows.entry(c).or_insert((f, t));
                            w.0 = w.0.min(f);
                            w.1 = w.1.max(t);
                        }
                    }
                    if windows.len() < 2 {
                        continue; // uncontended epoch
                    }
                    let members: Vec<usize> = windows.keys().copied().collect();
                    let stations: Vec<Station> = members
                        .iter()
                        .map(|&c| {
                            let (f, t) = windows[&c];
                            // Nominal operating rate from the link SNR at
                            // the window midpoint (RBAR-style decision).
                            let mid = SimTime::from_micros((f + t) / 2);
                            let dist = self.paths[c].position_at(mid).distance(ap_pos);
                            let snr = link_snr_db(&self.env, dist, self.spec.aps[a].coverage_m);
                            let rate = best_rate_for_snr(snr, CONTENTION_RATE_TARGET);
                            Station {
                                frame_airtime: MacTiming::ieee80211a()
                                    .exchange_airtime(rate, self.spec.payload_bytes),
                                active_from: SimDuration::from_micros(f - e_start),
                                active_to: SimDuration::from_micros(t - e_start),
                            }
                        })
                        .collect();
                    let seed = medium_root
                        .derive_idx("ap", a as u64)
                        .derive_idx("epoch", e)
                        .seed();
                    let sched = arbiter.arbitrate(
                        SimDuration::from_micros(e_end - e_start),
                        &stations,
                        seed,
                    );
                    ap_busy_s[a] += sched.busy().as_secs_f64();
                    ap_collision_s[a] += sched.collision_airtime.as_secs_f64();
                    ap_collisions[a] += sched.collisions;
                    for (i, &c) in members.iter().enumerate() {
                        epoch_shares.insert((a, e, c), sched.share(i, &stations));
                    }
                }
            }
        }

        // ------------------------------------------------------------------
        // Phase B: per-span link traffic. The spans flatten into one task
        // arena; each task is a pure function of the spec seed, so the
        // arena shards across workers and the results stream into
        // per-client running sums in whatever order they complete.
        // ------------------------------------------------------------------
        let mut tasks: Vec<SpanTask> = Vec::new();
        for (c, run) in runs.iter().enumerate() {
            for (k, &(from, to, ap_id)) in run.spans.iter().enumerate() {
                let span = to.saturating_since(from);
                // Associated time counts in the AP stats whatever the
                // span length; only the traffic simulation needs slots.
                ap_assoc_s[ap_id] += span.as_secs_f64();
                // Sub-slot spans cannot carry a trace slot; skip them.
                if span < hint_channel::SLOT_DURATION * 2 {
                    continue;
                }
                tasks.push(SpanTask {
                    client: c,
                    span_idx: k,
                    from,
                    to,
                    ap: ap_id,
                });
            }
        }

        // Per-client streaming accumulators: O(clients) memory however
        // many spans the run produced.
        let mut merged: Vec<SimResult> = (0..n_clients)
            .map(|_| SimResult {
                packets_sent: 0,
                packets_delivered: 0,
                attempts: 0,
                goodput_bps: 0.0,
                duration,
                rate_usage: [0; BitRate::COUNT],
                delivered_per_second: vec![0; duration.as_secs_f64().ceil() as usize],
                backhaul_dropped: 0,
            })
            .collect();

        let workers = jobs.min(tasks.len().max(1));
        if workers <= 1 {
            for task in &tasks {
                let result = self.simulate_span(task, &epoch_shares);
                merge_span(&mut merged[task.client], task.from, &result);
            }
        } else {
            // The runner-pool idiom: an atomic cursor hands out arena
            // indices, finished results stream back over a channel, and
            // the collector folds them as they land. The fold is a sum of
            // integers into disjoint per-client slots, so arrival order —
            // and therefore thread count — cannot change a single byte of
            // the outcome.
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, SimResult)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let (next, tasks, shares) = (&next, &tasks, &epoch_shares);
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let result = self.simulate_span(&tasks[i], shares);
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, result) in rx {
                    let task = &tasks[i];
                    merge_span(&mut merged[task.client], task.from, &result);
                }
            });
        }

        let mut client_outcomes = Vec::with_capacity(n_clients);
        for ((c, run), mut merged) in runs.iter().enumerate().zip(merged) {
            merged.goodput_bps =
                merged.packets_delivered as f64 * f64::from(self.spec.payload_bytes) * 8.0
                    / duration.as_secs_f64();
            client_outcomes.push(FleetClientOutcome {
                client: c,
                aps_visited: run.aps_visited.clone(),
                handoffs: run.handoffs,
                forced_handoffs: run.forced_handoffs,
                outage: run.outage,
                blackout_s: ResolvedFaults::total_s(&self.faults.blackout[c]),
                fallback_s: if client_hints_on && self.policy != HandoffPolicy::StrongestSignal {
                    self.faults.fallback_s(c)
                } else {
                    0.0
                },
                scan_retries: run.scan_retries,
                outcome: ScenarioOutcome {
                    environment: self.env.name.clone(),
                    protocol: self.protocol_name.clone(),
                    seed: self.client_seeds[c],
                    result: merged,
                },
            });
        }

        let goodputs: Vec<f64> = client_outcomes
            .iter()
            .map(|c| c.outcome.result.goodput_bps)
            .collect();
        FleetOutcome {
            environment: self.env.name.clone(),
            protocol: self.protocol_name.clone(),
            policy: self.policy.name().to_string(),
            contention: self.contention.name().to_string(),
            seed: self.spec.seed,
            total_handoffs: client_outcomes.iter().map(|c| c.handoffs).sum(),
            forced_handoffs: client_outcomes.iter().map(|c| c.forced_handoffs).sum(),
            jain_fairness: jain_index(&goodputs),
            aggregate_goodput_mbps: goodputs.iter().sum::<f64>() / 1e6,
            clients: client_outcomes,
            aps: (0..n_aps)
                .map(|a| FleetApStats {
                    association_s: ap_assoc_s[a],
                    handoffs_in: ap_handoffs_in[a],
                    wasted_airtime_s: ap_wasted_s[a],
                    contended_busy_s: ap_busy_s[a],
                    collision_s: ap_collision_s[a],
                    collisions: ap_collisions[a],
                    down_s: ResolvedFaults::total_s(&self.faults.ap_down[a]),
                    evictions: ap_evictions[a],
                })
                .collect(),
        }
    }

    /// Simulate one association span's traffic: a pure function of the
    /// compiled fleet, the task, and the Phase A' airtime shares — no
    /// mutable engine state — which is what lets Phase B shard the
    /// arena across threads.
    fn simulate_span(
        &self,
        task: &SpanTask,
        epoch_shares: &BTreeMap<(usize, u64, usize), f64>,
    ) -> SimResult {
        let &SpanTask {
            client: c,
            span_idx: k,
            from,
            to,
            ap: ap_id,
        } = task;
        let span = to.saturating_since(from);
        let ap = &self.spec.aps[ap_id];
        let ap_pos = Position {
            x: ap.x_m,
            y: ap.y_m,
        };
        // Mean link distance over the span (start/mid/end).
        let mid = from + span / 2;
        let dist = (self.paths[c].position_at(from).distance(ap_pos)
            + self.paths[c].position_at(mid).distance(ap_pos)
            + self.paths[c].position_at(to).distance(ap_pos))
            / 3.0;
        let mut span_env = self.env.clone();
        span_env.base_snr_db = link_snr_db(&self.env, dist, ap.coverage_m);
        let span_profile = slice_profile(&self.profiles[c], from, span);
        // The per-client stream compile() derived: re-rooting on the
        // stored seed is bit-identical (derivation is seed-pure).
        let span_seed = RngStream::new(self.client_seeds[c])
            .derive_idx("fleet-span", k as u64)
            .seed();
        let trace = Trace::generate(&span_env, &span_profile, span, span_seed);
        let mut sim = LinkSimulator::from_trace(trace).with_payload(self.spec.payload_bytes);
        if let Some(stream) = self.span_hints(&span_profile, span, span_seed) {
            sim = sim.with_owned_hints(stream);
        }
        // The span's AP brings its wired backhaul (if the spec gave it
        // one): a Flow workload's connection state — window, RTT
        // estimate, queue occupancy — resets at each association span,
        // modelling a fresh flow per association.
        if let Some(backhaul) = ap.backhaul {
            sim = sim.with_backhaul(backhaul);
        }
        if self.contention == ContentionMode::Shared {
            // Trace second s of the span runs at the share the arbiter
            // granted this client for the epoch containing that
            // second's start.
            let epoch_us = self.spec.medium.epoch.as_micros();
            let n_secs = span.as_secs_f64().ceil() as usize;
            let span_shares: Vec<f64> = (0..n_secs)
                .map(|s| {
                    let t_us = from.as_micros() + s as u64 * 1_000_000;
                    epoch_shares
                        .get(&(ap_id, t_us / epoch_us, c))
                        .copied()
                        .unwrap_or(1.0)
                })
                .collect();
            sim = sim.with_airtime_shares(span_shares);
        }
        let mut adapter = (self.factory)(&self.spec.protocol.params());
        // A trace workload replays the records that fall inside this
        // span, rebased to span-local time, so a client's recorded
        // schedule survives handoffs intact; Udp/Tcp borrow as-is.
        let workload = match &self.workloads[c] {
            Workload::Trace(TraceSource::Inline(t)) => {
                Cow::Owned(Workload::Trace(TraceSource::Inline(t.window(from, to))))
            }
            w => Cow::Borrowed(w),
        };
        sim.run(adapter.as_mut(), &workload)
    }

    /// Activate an association for `run` at `now` (plus the
    /// reassociation cost), updating handoff counters and outage.
    /// Returns whether a handoff was recorded, so the caller's per-AP
    /// arrival counter always agrees with the client's handoff count
    /// (initial association and re-joining the AP last left count as
    /// neither).
    fn associate(
        &self,
        run: &mut ClientRun,
        ap_id: usize,
        now: SimTime,
        reassoc: SimDuration,
        end: SimTime,
    ) -> bool {
        let active = (now + reassoc).min(end);
        if let Some(dark) = run.dark_since.take() {
            run.outage += active.saturating_since(dark);
        } else {
            run.outage += active.saturating_since(now);
        }
        let mut recorded = false;
        if run.aps_visited.last() != Some(&ap_id) {
            if !run.aps_visited.is_empty() {
                run.handoffs += 1;
                recorded = true;
                if run.pending_forced {
                    run.forced_handoffs += 1;
                }
            }
            run.aps_visited.push(ap_id);
        }
        run.pending_forced = false;
        run.current = Some(ap_id);
        run.span_start = active;
        recorded
    }

    /// The hint stream a single association span feeds its adapter
    /// (regenerated over the span profile, like a detector restarting on
    /// reassociation).
    fn span_hints(
        &self,
        span_profile: &MotionProfile,
        span: SimDuration,
        span_seed: u64,
    ) -> Option<HintStream> {
        match &self.spec.hints {
            HintSpec::None => None,
            HintSpec::Oracle { latency } => Some(HintStream::oracle(span_profile, span, *latency)),
            HintSpec::Sensors { .. } => Some(HintStream::from_sensors(
                span_profile,
                span,
                span_seed ^ HINT_SEED_MASK,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_rateadapt::fleet::{
        ApOutage, FaultSpec, HintDropout, MediumSpec, RadioBlackout, RandomOutages,
    };
    use hint_rateadapt::scenario::MotionSpec;
    use hint_rateadapt::Workload;

    /// Two APs 120 m apart with 70 m coverage; two walkers crossing the
    /// floor east/west, one static client parked near AP 0.
    fn crossing_fleet(policy: &str) -> FleetSpec {
        FleetSpec::builder()
            .bounds(200.0, 100.0)
            .ap(40.0, 50.0, 70.0)
            .ap(160.0, 50.0, 70.0)
            .client(
                5.0,
                50.0,
                MotionSpec::Walking {
                    speed_mps: 1.6,
                    heading_deg: 90.0,
                },
                Workload::Udp,
            )
            .client(
                195.0,
                50.0,
                MotionSpec::Walking {
                    speed_mps: 1.6,
                    heading_deg: 270.0,
                },
                Workload::Udp,
            )
            .client(30.0, 40.0, MotionSpec::Stationary, Workload::Udp)
            .duration(SimDuration::from_secs(90))
            .seed(0xF1EE7)
            .handoff_policy(policy)
            .into_spec()
    }

    #[test]
    fn crossing_clients_hand_off_between_aps() {
        for policy in ["strongest-signal", "hint-aware", "hint-etx"] {
            let fleet = FleetScenario::compile(&crossing_fleet(policy)).expect("valid");
            let out = fleet.run();
            // Both walkers visit both APs; the parked client stays put.
            for c in [0, 1] {
                assert!(
                    out.clients[c].aps_visited.len() >= 2,
                    "{policy}: client {c} visited {:?}",
                    out.clients[c].aps_visited
                );
                assert!(out.clients[c].handoffs >= 1, "{policy}: client {c}");
            }
            assert_eq!(out.clients[2].aps_visited, vec![0], "{policy}");
            assert_eq!(out.clients[2].handoffs, 0, "{policy}");
            assert!(out.total_handoffs >= 2, "{policy}");
            // Per-AP arrivals and per-client handoffs are two views of
            // the same events.
            assert_eq!(
                out.aps.iter().map(|a| a.handoffs_in).sum::<u32>(),
                out.total_handoffs,
                "{policy}: AP arrivals disagree with client handoffs"
            );
            // Everyone moves traffic.
            for c in &out.clients {
                assert!(
                    c.outcome.result.goodput_bps > 0.0,
                    "{policy}: client {} moved no traffic",
                    c.client
                );
            }
            assert!(
                out.jain_fairness > 0.3 && out.jain_fairness <= 1.0,
                "{policy}"
            );
        }
    }

    #[test]
    fn fleet_runs_are_bit_identical() {
        let fleet = FleetScenario::compile(&crossing_fleet("hint-etx")).expect("valid");
        let a = fleet.run();
        let b = fleet.run();
        assert_eq!(a, b);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        // And recompiling from the same spec changes nothing either.
        let again = FleetScenario::compile(&crossing_fleet("hint-etx"))
            .expect("valid")
            .run();
        assert_eq!(a, again);
    }

    #[test]
    fn sharded_runs_are_byte_identical_to_serial() {
        // The `--jobs N` contract: any worker count replays the serial
        // outcome byte-for-byte, for isolated and contended media alike.
        let crossing = FleetScenario::compile(&crossing_fleet("hint-aware")).expect("valid");
        let serial = crossing.run();
        for jobs in [2, 3, 4, 8] {
            let sharded = crossing.run_with_jobs(jobs);
            assert_eq!(serial, sharded, "jobs={jobs}");
            assert_eq!(
                serial.to_json_pretty(),
                sharded.to_json_pretty(),
                "jobs={jobs}"
            );
        }
        let contended =
            FleetScenario::compile(&parked_fleet(4, MediumSpec::shared())).expect("valid");
        let serial = contended.run();
        for jobs in [2, 4] {
            assert_eq!(serial, contended.run_with_jobs(jobs), "shared jobs={jobs}");
        }
        // More workers than spans degrades gracefully too.
        assert_eq!(serial, contended.run_with_jobs(64));
    }

    #[test]
    fn hint_policies_avoid_forced_handoffs() {
        let signal = FleetScenario::compile(&crossing_fleet("strongest-signal"))
            .expect("valid")
            .run();
        let hint = FleetScenario::compile(&crossing_fleet("hint-aware"))
            .expect("valid")
            .run();
        // The hint policy switches toward the AP ahead before coverage
        // runs out, so it never loses the link mid-walk.
        assert!(
            hint.forced_handoffs <= signal.forced_handoffs,
            "hint {} vs signal {}",
            hint.forced_handoffs,
            signal.forced_handoffs
        );
        // Ghost airtime only accrues when clients vanish silently.
        let hint_wasted: f64 = hint.aps.iter().map(|a| a.wasted_airtime_s).sum();
        let signal_wasted: f64 = signal.aps.iter().map(|a| a.wasted_airtime_s).sum();
        assert!(
            hint_wasted <= signal_wasted + 1e-9,
            "hint {hint_wasted} vs signal {signal_wasted}"
        );
    }

    #[test]
    fn rejoining_the_same_ap_after_an_outage_is_not_a_handoff() {
        // One AP, one walker that leaves coverage and walks back in: the
        // outage is real, but no AP-to-AP handoff ever happens, and the
        // AP arrival counter must agree.
        let spec = FleetSpec::builder()
            .bounds(300.0, 100.0)
            .ap(40.0, 50.0, 60.0)
            .client(
                40.0,
                50.0,
                MotionSpec::Custom(vec![
                    // Walk east out of coverage...
                    hint_sensors::motion::MotionSegment {
                        state: hint_sensors::motion::MotionState::Vehicle { speed_mps: 10.0 },
                        duration: SimDuration::from_secs(10),
                        heading_deg: 90.0,
                    },
                    // ...and straight back.
                    hint_sensors::motion::MotionSegment {
                        state: hint_sensors::motion::MotionState::Vehicle { speed_mps: 10.0 },
                        duration: SimDuration::from_secs(10),
                        heading_deg: 270.0,
                    },
                ]),
                Workload::Udp,
            )
            .duration(SimDuration::from_secs(20))
            .seed(3)
            .handoff_policy("strongest-signal")
            .into_spec();
        let out = FleetScenario::compile(&spec).expect("valid").run();
        let c = &out.clients[0];
        assert_eq!(c.aps_visited, vec![0], "left and rejoined the same AP");
        assert_eq!(c.handoffs, 0);
        assert_eq!(out.aps[0].handoffs_in, 0);
        // The out-of-coverage spell shows up as outage and ghost airtime.
        assert!(c.outage > SimDuration::from_secs(1), "outage {}", c.outage);
        assert!(out.aps[0].wasted_airtime_s > 0.0);
        // Association time counts both spans, outage neither.
        assert!(
            out.aps[0].association_s > 10.0 && out.aps[0].association_s < 19.0,
            "association_s {}",
            out.aps[0].association_s
        );
    }

    /// `n` stationary clients parked at staggered distances around one
    /// AP — the canonical contention geometry.
    fn parked_fleet(n: usize, medium: MediumSpec) -> FleetSpec {
        let mut b = FleetSpec::builder()
            .bounds(140.0, 100.0)
            .ap(70.0, 50.0, 65.0)
            .duration(SimDuration::from_secs(12))
            .seed(0xC0117E57)
            .handoff_policy("strongest-signal")
            .medium(medium);
        for i in 0..n {
            let angle = i as f64 * 2.399; // golden angle: spread, no overlap
            let r = 8.0 + 3.0 * i as f64;
            b = b.client(
                70.0 + r * angle.cos(),
                50.0 + r * angle.sin(),
                MotionSpec::Stationary,
                Workload::Udp,
            );
        }
        b.into_spec()
    }

    #[test]
    fn shared_medium_saturates_per_ap_throughput() {
        let run = |n: usize, medium: MediumSpec| {
            FleetScenario::compile(&parked_fleet(n, medium))
                .expect("valid")
                .run()
        };
        let isolated = run(4, MediumSpec::isolated());
        let shared = run(4, MediumSpec::shared());
        // Contention makes per-AP aggregate throughput sub-additive.
        assert!(
            shared.aggregate_goodput_mbps < isolated.aggregate_goodput_mbps * 0.7,
            "shared {} vs isolated {}",
            shared.aggregate_goodput_mbps,
            isolated.aggregate_goodput_mbps
        );
        // Nobody starves, and the medium accounting is visible.
        for c in &shared.clients {
            assert!(c.outcome.result.goodput_bps > 0.0, "client {}", c.client);
        }
        assert_eq!(shared.contention, "shared");
        assert!(shared.aps[0].contended_busy_s > 0.0);
        assert!(shared.jain_fairness > 0.5, "{}", shared.jain_fairness);
        // A lone client never contends: shared == its own isolated run.
        let solo_shared = run(1, MediumSpec::shared());
        let solo_isolated = run(1, MediumSpec::isolated());
        assert_eq!(
            solo_shared.aggregate_goodput_mbps,
            solo_isolated.aggregate_goodput_mbps
        );
        assert_eq!(solo_shared.aps[0].contended_busy_s, 0.0);
    }

    #[test]
    fn shared_fleet_runs_are_bit_identical() {
        let fleet = FleetScenario::compile(&parked_fleet(3, MediumSpec::shared())).expect("valid");
        let a = fleet.run();
        let b = fleet.run();
        assert_eq!(a, b);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        let again = FleetScenario::compile(&parked_fleet(3, MediumSpec::shared()))
            .expect("valid")
            .run();
        assert_eq!(a, again);
    }

    #[test]
    fn shared_outcome_serializes_contention_and_round_trips() {
        let out = FleetScenario::compile(&parked_fleet(3, MediumSpec::shared()))
            .expect("valid")
            .run();
        let json = out.to_json_pretty();
        assert!(json.contains("\"contention\": \"shared\""), "{json}");
        assert!(json.contains("contended_busy_s"), "{json}");
        let back = FleetOutcome::from_json(&json).expect("parses");
        assert_eq!(back, out);
        // Isolated outcomes keep the pre-contention schema exactly.
        let iso = FleetScenario::compile(&parked_fleet(3, MediumSpec::isolated()))
            .expect("valid")
            .run();
        let iso_json = iso.to_json_pretty();
        assert!(!iso_json.contains("contention"), "{iso_json}");
        assert!(!iso_json.contains("contended_busy_s"), "{iso_json}");
    }

    #[test]
    fn degenerate_fleet_with_unassociated_client_stays_total() {
        // One client parked far outside the only AP's coverage: it never
        // associates, moves no traffic, and must not poison any statistic
        // with NaN — under either medium model.
        for medium in [MediumSpec::isolated(), MediumSpec::shared()] {
            let spec = FleetSpec::builder()
                .bounds(400.0, 100.0)
                .ap(40.0, 50.0, 50.0)
                .client(30.0, 50.0, MotionSpec::Stationary, Workload::Udp)
                .client(390.0, 50.0, MotionSpec::Stationary, Workload::Udp)
                .duration(SimDuration::from_secs(10))
                .seed(5)
                .handoff_policy("strongest-signal")
                .medium(medium)
                .into_spec();
            let out = FleetScenario::compile(&spec).expect("valid").run();
            let dark = &out.clients[1];
            assert!(dark.aps_visited.is_empty());
            assert_eq!(dark.outcome.result.goodput_bps, 0.0);
            assert_eq!(dark.outage, SimDuration::from_secs(10));
            assert!(out.jain_fairness.is_finite());
            assert!(out.jain_fairness > 0.0 && out.jain_fairness <= 1.0);
            assert!(out.aggregate_goodput_mbps.is_finite());
            for ap in &out.aps {
                assert!(ap.association_s.is_finite());
                assert!(ap.wasted_airtime_s.is_finite());
                assert!(ap.contended_busy_s.is_finite());
                assert!(ap.collision_s.is_finite());
            }
            // Everything serializes to finite JSON and round-trips.
            let back = FleetOutcome::from_json(&out.to_json_pretty()).expect("parses");
            assert_eq!(back, out);
        }
    }

    #[test]
    fn fault_free_faultspec_runs_byte_identical_to_no_faultspec() {
        // A FaultSpec that resolves to zero windows (here: a zero-count
        // random storm) must take the exact pre-fault code paths.
        let base = crossing_fleet("hint-aware");
        let mut with_empty = base.clone();
        with_empty.faults = FaultSpec {
            random_outages: Some(RandomOutages {
                count: 0,
                min_duration: SimDuration::from_secs(1),
                max_duration: SimDuration::from_secs(2),
            }),
            ..FaultSpec::default()
        };
        let a = FleetScenario::compile(&base).expect("valid").run();
        let b = FleetScenario::compile(&with_empty).expect("valid").run();
        assert_eq!(a, b);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
    }

    #[test]
    fn ap_outage_evicts_clients_and_counts_resilience_metrics() {
        let mut spec = parked_fleet(3, MediumSpec::isolated());
        spec.faults.ap_outages.push(ApOutage {
            ap: 0,
            start: SimDuration::from_secs(4),
            duration: SimDuration::from_secs(3),
        });
        let fleet = FleetScenario::compile(&spec).expect("valid");
        let out = fleet.run();
        // Everyone was associated when the AP died: one eviction each,
        // and the schedule-derived downtime is exact.
        assert_eq!(out.aps[0].evictions, 3);
        assert!((out.aps[0].down_s - 3.0).abs() < 1e-9);
        // A dead AP burns no ghost airtime on its evictees.
        assert_eq!(out.aps[0].wasted_airtime_s, 0.0);
        for c in &out.clients {
            // Eviction, backed-off rescans, rejoin of the same AP: an
            // outage but no AP-to-AP handoff.
            assert_eq!(c.aps_visited, vec![0], "client {}", c.client);
            assert_eq!(c.handoffs, 0, "client {}", c.client);
            assert!(
                c.outage >= SimDuration::from_secs(3),
                "client {} outage {}",
                c.client,
                c.outage
            );
            assert!(c.scan_retries > 0, "client {}", c.client);
        }
        // The fault path keeps the Phase B sharding contract.
        for jobs in [2, 4] {
            assert_eq!(out, fleet.run_with_jobs(jobs), "jobs={jobs}");
        }
        // And replays byte-identically.
        assert_eq!(out.to_json_pretty(), fleet.run().to_json_pretty());
    }

    #[test]
    fn hint_dropout_falls_back_to_rssi_and_naive_trusting_stays_stuck() {
        // Client 0 (the eastbound walker) loses its hint stream for the
        // whole run.
        let mut spec = crossing_fleet("hint-aware");
        spec.faults.hint_dropouts.push(HintDropout {
            client: 0,
            start: SimDuration::ZERO,
            duration: SimDuration::from_secs(90),
        });
        let out = FleetScenario::compile(&spec).expect("valid").run();
        // 90 s window minus the 2 s stale hold ran in RSSI fallback.
        assert!(
            (out.clients[0].fallback_s - 88.0).abs() < 1e-9,
            "fallback {}",
            out.clients[0].fallback_s
        );
        assert_eq!(out.clients[1].fallback_s, 0.0);
        // Degraded, not stranded: the walker still crosses to AP 1.
        assert!(
            out.clients[0].aps_visited.len() >= 2,
            "visited {:?}",
            out.clients[0].aps_visited
        );

        // The naive ablation (hint_fallback: false) keeps trusting the
        // frozen "stationary" reading: every candidate scores an
        // infinite dwell, hysteresis never clears, and the walker rides
        // AP 0 to the coverage edge — a forced handoff the fallback
        // policy avoids by switching on signal strength.
        let mut naive = spec.clone();
        naive.faults.hint_fallback = false;
        let nout = FleetScenario::compile(&naive).expect("valid").run();
        assert_eq!(nout.clients[0].fallback_s, 0.0);
        assert!(
            nout.clients[0].forced_handoffs > out.clients[0].forced_handoffs
                || nout.clients[0].outage > out.clients[0].outage,
            "naive should degrade: naive forced={} outage={} vs fallback forced={} outage={}",
            nout.clients[0].forced_handoffs,
            nout.clients[0].outage,
            out.clients[0].forced_handoffs,
            out.clients[0].outage
        );
    }

    #[test]
    fn radio_blackout_truncates_spans_and_charges_ghost_airtime() {
        let mut spec = parked_fleet(2, MediumSpec::isolated());
        spec.faults.radio_blackouts.push(RadioBlackout {
            client: 1,
            start: SimDuration::from_secs(3),
            duration: SimDuration::from_secs(4),
        });
        let out = FleetScenario::compile(&spec).expect("valid").run();
        let dead = &out.clients[1];
        assert!((dead.blackout_s - 4.0).abs() < 1e-9);
        assert!(
            dead.outage >= SimDuration::from_secs(4),
            "outage {}",
            dead.outage
        );
        // The radio died silently: the AP burns a ghost window on it.
        assert!(out.aps[0].wasted_airtime_s > 0.0);
        // The untouched client carries no resilience metrics.
        assert_eq!(out.clients[0].blackout_s, 0.0);
        assert_eq!(out.clients[0].scan_retries, 0);
        // Spans truncate at the blackout boundary: the 12 s run loses
        // the 4 s hole from AP association time.
        assert!(
            out.aps[0].association_s < 2.0 * 12.0 - 3.5,
            "association_s {}",
            out.aps[0].association_s
        );
        // Everything round-trips with the sparse resilience fields.
        let back = FleetOutcome::from_json(&out.to_json_pretty()).expect("parses");
        assert_eq!(back, out);
    }

    #[test]
    fn random_outage_storms_are_seed_deterministic() {
        let mut spec = parked_fleet(3, MediumSpec::isolated());
        spec.faults.random_outages = Some(RandomOutages {
            count: 5,
            min_duration: SimDuration::from_millis(500),
            max_duration: SimDuration::from_secs(2),
        });
        let a = FleetScenario::compile(&spec).expect("valid").run();
        let b = FleetScenario::compile(&spec).expect("valid").run();
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        // The storm actually took the one AP down for a while.
        assert!(a.aps[0].down_s > 0.0);
        assert!(a.aps[0].evictions > 0);
        // A different fleet seed draws a different storm.
        let mut reseeded = spec.clone();
        reseeded.seed ^= 1;
        let c = FleetScenario::compile(&reseeded).expect("valid").run();
        assert_ne!(a.aps[0].down_s, c.aps[0].down_s);
    }

    #[test]
    fn slice_profile_preserves_total_duration() {
        let p = MotionProfile::static_move_static(
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
        );
        let s = slice_profile(&p, SimTime::from_secs(3), SimDuration::from_secs(8));
        assert_eq!(s.duration(), SimDuration::from_secs(8));
        // 3..5 static, 5..11 walking.
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.segments()[0].duration, SimDuration::from_secs(2));
        // Slices past the end extend the last segment.
        let tail = slice_profile(&p, SimTime::from_secs(18), SimDuration::from_secs(10));
        assert_eq!(tail.duration(), SimDuration::from_secs(10));
        assert!(!tail.segments().iter().any(|seg| seg.state.is_moving()));
    }

    #[test]
    fn client_path_follows_heading() {
        let profile = MotionProfile::walking(SimDuration::from_secs(10), 2.0, 90.0);
        let path = ClientPath::new(Position { x: 10.0, y: 5.0 }, &profile);
        let p = path.position_at(SimTime::from_secs(5));
        assert!((p.x - 20.0).abs() < 1e-9, "east by 10 m: {}", p.x);
        assert!((p.y - 5.0).abs() < 1e-9);
        // Past the schedule the last leg extends.
        let p = path.position_at(SimTime::from_secs(20));
        assert!((p.x - 50.0).abs() < 1e-9);
    }

    #[test]
    fn link_snr_rolls_off_toward_coverage_edge() {
        let env = Environment::office();
        let near = link_snr_db(&env, 10.0, 70.0);
        let edge = link_snr_db(&env, 70.0, 70.0);
        assert!(near > env.base_snr_db);
        assert!(edge < env.base_snr_db - 10.0, "edge {edge}");
        assert!(near > edge);
    }
}
