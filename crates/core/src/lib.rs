//! # sensor-hints — the hint-aware wireless architecture
//!
//! A Rust reproduction of *Improving Wireless Network Performance Using
//! Sensor Hints* (NSDI 2011 / MIT MS thesis, Ravindranath et al.).
//!
//! The paper's architecture (Ch. 2, Fig. 2-1): sensors on commodity
//! devices — accelerometer, GPS, compass, gyroscope — feed **hints** about
//! the device's mobility directly into the wireless networking stack,
//! where protocols at every layer adapt to them; the **Hint Protocol**
//! (Sec. 2.3) carries hints over the air so a sender can adapt to its
//! *receiver's* mobility.
//!
//! This crate is the architectural glue plus a curated re-export of every
//! subsystem built for the reproduction:
//!
//! | Module | Implements |
//! |---|---|
//! | [`hint`]    | The unified hint value type and its wire mapping |
//! | [`service`] | The device-local hint service (Sec. 2.2) |
//! | [`device`]  | A full sensing device: sensors → detector → service → frames |
//! | [`neighbors`] | Per-neighbour hint tables fed by received frames |
//! | [`power`]   | Movement-based radio power saving (Sec. 5.4) |
//! | [`sim`], [`sensors`], [`channel`], [`mac`], [`rateadapt`], [`topology`], [`vehicular`], [`ap`] | The substrate crates, re-exported |
//!
//! ## Quickstart
//!
//! ```
//! use sensor_hints::device::HintedDevice;
//! use sensor_hints::sensors::MotionProfile;
//! use sensor_hints::sim::{SimDuration, SimTime};
//!
//! // A phone that is still for 5 s, walks for 5 s, then stops again.
//! let profile = MotionProfile::static_move_static(
//!     SimDuration::from_secs(5),
//!     SimDuration::from_secs(5),
//!     SimDuration::from_secs(5),
//! );
//! let mut phone = HintedDevice::new(profile, 42);
//! phone.advance_to(SimTime::from_secs(7)); // mid-walk
//! assert!(phone.hints().is_moving());
//! // The hint ships in the frame's hint field, ready for the ACK bit.
//! assert_eq!(phone.outgoing_hint_field().movement_hint(), Some(true));
//! ```

pub mod device;
pub mod fleet;
pub mod hint;
pub mod neighbors;
pub mod power;
pub mod service;

/// Deterministic simulation substrate (clock, RNG, statistics, events).
pub use hint_sim as sim;

/// Sensor models and mobility-hint extraction (Ch. 2).
pub use hint_sensors as sensors;

/// Channel models and replayable packet-fate traces (Sec. 3.3).
pub use hint_channel as channel;

/// 802.11a link layer and the hint wire protocol (Sec. 2.3).
pub use hint_mac as mac;

/// Bit-rate adaptation protocols and evaluation (Ch. 3).
pub use hint_rateadapt as rateadapt;

/// Hint-aware topology maintenance (Ch. 4).
pub use hint_topology as topology;

/// Vehicular mesh and CTE route selection (Sec. 5.1).
pub use hint_vehicular as vehicular;

/// Hint-aware access point policies (Sec. 5.2).
pub use hint_ap as ap;

pub use device::HintedDevice;
pub use fleet::FleetScenario;
pub use hint::{Hint, HintKind};
pub use neighbors::NeighborHints;
pub use service::HintService;
