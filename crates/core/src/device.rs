//! A complete sensing device: sensors → detectors → hint service → frames.
//!
//! [`HintedDevice`] wires the full Ch. 2 pipeline together for one device:
//! a synthetic accelerometer observing the device's ground-truth motion,
//! the jerk-based movement detector, heading fusion (compass + gyro), an
//! optional outdoor GPS, and the [`HintService`] the networking stack
//! queries. It also produces the outgoing [`HintField`] each frame should
//! carry (Sec. 2.3).

use crate::hint::Hint;
use crate::service::HintService;
use hint_mac::hint_proto::{HintField, HintWire};
use hint_sensors::accelerometer::{Accelerometer, ACCEL_REPORT_PERIOD};
use hint_sensors::compass::{Compass, MagneticEnvironment};
use hint_sensors::fusion::HeadingEstimator;
use hint_sensors::gps::Gps;
use hint_sensors::gyro::Gyro;
use hint_sensors::jerk::MovementDetector;
use hint_sensors::motion::MotionProfile;
use hint_sensors::speed::IndoorSpeedEstimator;
use hint_sim::{RngStream, SimDuration, SimTime};

/// Sensor cadences used by the pipeline.
const GYRO_PERIOD: SimDuration = SimDuration::from_millis(20);
const COMPASS_PERIOD: SimDuration = SimDuration::from_secs(1);
const GPS_PERIOD: SimDuration = SimDuration::from_secs(1);

/// A device running the full sensing pipeline over a motion profile.
pub struct HintedDevice {
    profile: MotionProfile,
    accel: Accelerometer,
    detector: MovementDetector,
    /// Indoor speed from accelerometer integration (Sec. 2.2.3); outdoor
    /// devices prefer the GPS speed, which overwrites this at 1 Hz.
    speed_est: IndoorSpeedEstimator,
    compass: Compass,
    gyro: Gyro,
    fusion: HeadingEstimator,
    gps: Option<Gps>,
    service: HintService,
    now: SimTime,
    next_accel: SimTime,
    next_gyro: SimTime,
    next_compass: SimTime,
    next_gps: SimTime,
}

impl HintedDevice {
    /// An indoor device (accelerometer + compass + gyro; no GPS lock).
    pub fn new(profile: MotionProfile, seed: u64) -> Self {
        Self::build(profile, seed, false)
    }

    /// An outdoor device (adds 1 Hz GPS fixes with speed/position hints).
    pub fn outdoor(profile: MotionProfile, seed: u64) -> Self {
        Self::build(profile, seed, true)
    }

    fn build(profile: MotionProfile, seed: u64, outdoors: bool) -> Self {
        let root = RngStream::new(seed);
        HintedDevice {
            accel: Accelerometer::new(profile.clone(), root.derive("accel")),
            detector: MovementDetector::new(),
            speed_est: IndoorSpeedEstimator::new(),
            compass: Compass::new(
                profile.clone(),
                if outdoors {
                    MagneticEnvironment::CleanOutdoor
                } else {
                    MagneticEnvironment::Indoor
                },
                root.derive("compass"),
            ),
            gyro: Gyro::new(profile.clone(), root.derive("gyro")),
            fusion: HeadingEstimator::new(),
            gps: outdoors.then(|| Gps::outdoor(profile.clone(), root.derive("gps"))),
            service: HintService::new(),
            profile,
            now: SimTime::ZERO,
            next_accel: SimTime::ZERO,
            next_gyro: SimTime::ZERO,
            next_compass: SimTime::ZERO,
            next_gps: SimTime::ZERO,
        }
    }

    /// The device's ground-truth motion (test/diagnostic aid; protocols
    /// must only consume [`HintedDevice::hints`]).
    pub fn profile(&self) -> &MotionProfile {
        &self.profile
    }

    /// Current simulation time of the pipeline.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run every sensor pipeline forward to time `t`, updating the hint
    /// service along the way.
    pub fn advance_to(&mut self, t: SimTime) {
        while self.next_accel <= t
            || self.next_gyro <= t
            || self.next_compass <= t
            || (self.gps.is_some() && self.next_gps <= t)
        {
            // Process the earliest pending sensor event.
            let mut next = self.next_accel;
            if self.next_gyro < next {
                next = self.next_gyro;
            }
            if self.next_compass < next {
                next = self.next_compass;
            }
            if self.gps.is_some() && self.next_gps < next {
                next = self.next_gps;
            }

            if next == self.next_accel {
                let report = self.accel.next_report();
                let sample = self.detector.push(&report);
                self.service
                    .publish(report.t, Hint::Movement(sample.moving));
                // Indoor speed by integration (Sec. 2.2.3). Outdoors the
                // 1 Hz GPS fix overwrites this with the better estimate.
                let spd = self.speed_est.push(&report);
                if self.gps.is_none() {
                    self.service.publish(report.t, Hint::Speed(spd));
                }
                self.next_accel = report.t + ACCEL_REPORT_PERIOD;
            } else if next == self.next_gyro {
                let r = self.gyro.read_at(self.next_gyro);
                self.fusion.update_gyro(&r);
                if let Some(h) = self.fusion.heading_deg() {
                    self.service.publish(self.next_gyro, Hint::Heading(h));
                }
                self.next_gyro += GYRO_PERIOD;
            } else if next == self.next_compass {
                let r = self.compass.read_at(self.next_compass);
                self.fusion.update_compass(&r);
                if let Some(h) = self.fusion.heading_deg() {
                    self.service.publish(self.next_compass, Hint::Heading(h));
                }
                self.next_compass += COMPASS_PERIOD;
            } else {
                let at = self.next_gps;
                if let Some(gps) = &mut self.gps {
                    if let Some(fix) = gps.fix_at(at) {
                        self.service.publish(at, Hint::Speed(fix.speed_mps));
                        self.service.publish(at, Hint::Position(fix.position));
                    }
                }
                self.next_gps = at + GPS_PERIOD;
            }
            self.now = next;
        }
        self.now = t;
    }

    /// The hint service (stack-facing query interface).
    pub fn service(&self) -> &HintService {
        &self.service
    }

    /// Snapshot of all current hints.
    pub fn hints(&self) -> hint_sensors::hints::MobilityHints {
        self.service.snapshot()
    }

    /// The hint field outgoing frames should carry right now: the
    /// movement bit always (it is free), plus the movement TLV.
    pub fn outgoing_hint_field(&self) -> HintField {
        HintField::with_tlv(HintWire::Movement(self.service.is_moving()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_tracks_motion_end_to_end() {
        let profile = MotionProfile::static_move_static(
            SimDuration::from_secs(4),
            SimDuration::from_secs(4),
            SimDuration::from_secs(4),
        );
        let mut dev = HintedDevice::new(profile, 7);
        dev.advance_to(SimTime::from_secs(2));
        assert!(!dev.hints().is_moving(), "static at 2 s");
        dev.advance_to(SimTime::from_secs(6));
        assert!(dev.hints().is_moving(), "moving at 6 s");
        dev.advance_to(SimTime::from_secs(11));
        assert!(!dev.hints().is_moving(), "static again at 11 s");
    }

    #[test]
    fn heading_hint_converges_to_truth() {
        let profile = MotionProfile::walking(SimDuration::from_secs(60), 1.4, 135.0);
        let mut dev = HintedDevice::new(profile, 9);
        dev.advance_to(SimTime::from_secs(60));
        let h = dev.hints().heading.expect("heading available");
        let err = h.difference(hint_sensors::HeadingHint::new(135.0));
        assert!(err < 15.0, "heading error {err:.1}°");
    }

    #[test]
    fn outdoor_device_gets_speed_and_position() {
        let profile = MotionProfile::vehicle(SimDuration::from_secs(30), 10.0, 90.0);
        let mut dev = HintedDevice::outdoor(profile, 11);
        dev.advance_to(SimTime::from_secs(30));
        let hints = dev.hints();
        let speed = hints.speed.expect("speed hint").mps();
        assert!((speed - 10.0).abs() < 2.0, "speed {speed}");
        let pos = hints.position.expect("position hint").0;
        assert!(pos.x > 200.0, "travelled east: {}", pos.x);
    }

    #[test]
    fn indoor_device_estimates_speed_without_gps() {
        let profile = MotionProfile::walking(SimDuration::from_secs(20), 1.4, 0.0);
        let mut dev = HintedDevice::new(profile, 13);
        dev.advance_to(SimTime::from_secs(20));
        // Speed comes from accelerometer integration: walking-band value,
        // no position (WiFi localization is a separate opt-in pipeline).
        let speed = dev.hints().speed.expect("indoor speed hint").mps();
        assert!((0.2..3.0).contains(&speed), "indoor speed {speed:.2}");
        assert!(dev.hints().position.is_none());
    }

    #[test]
    fn indoor_static_device_reports_near_zero_speed() {
        let profile = MotionProfile::stationary(SimDuration::from_secs(10));
        let mut dev = HintedDevice::new(profile, 19);
        dev.advance_to(SimTime::from_secs(10));
        let speed = dev.hints().speed.expect("indoor speed hint").mps();
        assert!(speed < 0.15, "static speed {speed:.2}");
    }

    #[test]
    fn outgoing_field_mirrors_movement() {
        let profile = MotionProfile::walking(SimDuration::from_secs(10), 1.4, 0.0);
        let mut dev = HintedDevice::new(profile, 15);
        dev.advance_to(SimTime::from_secs(5));
        let f = dev.outgoing_hint_field();
        assert_eq!(f.movement_hint(), Some(true));
        assert_eq!(f.wire_overhead_bytes(), 2);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let profile = MotionProfile::stationary(SimDuration::from_secs(5));
        let mut dev = HintedDevice::new(profile, 17);
        dev.advance_to(SimTime::from_secs(3));
        let snap = dev.hints();
        dev.advance_to(SimTime::from_secs(3));
        assert_eq!(dev.hints(), snap);
        assert_eq!(dev.now(), SimTime::from_secs(3));
    }
}
