//! The unified hint value type.
//!
//! Sec. 2.3's wire format carries `(hintType, hintVal)` pairs; locally,
//! protocols consume richer typed values. [`Hint`] is the local
//! representation, with lossy (quantised) conversion to and from the
//! two-byte wire form in `hint-mac`.

use hint_mac::hint_proto::HintWire;
use hint_sensors::gps::Position;

/// The kinds of mobility hint defined in Sec. 2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HintKind {
    /// Boolean movement (Sec. 2.2.1).
    Movement,
    /// Heading in degrees (Sec. 2.2.2).
    Heading,
    /// Speed in m/s (Sec. 2.2.3).
    Speed,
    /// Position on the local plane (Sec. 2.2.3; local-only — positions do
    /// not fit the two-byte wire TLV and ride higher-layer messages).
    Position,
}

/// A typed hint value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Hint {
    /// The device is (not) moving.
    Movement(bool),
    /// Heading, degrees clockwise from north `[0, 360)`.
    Heading(f64),
    /// Speed, m/s.
    Speed(f64),
    /// Position, metres on the local tangent plane.
    Position(Position),
}

impl Hint {
    /// This hint's kind tag.
    pub fn kind(&self) -> HintKind {
        match self {
            Hint::Movement(_) => HintKind::Movement,
            Hint::Heading(_) => HintKind::Heading,
            Hint::Speed(_) => HintKind::Speed,
            Hint::Position(_) => HintKind::Position,
        }
    }

    /// Convert to the two-byte wire form, if this kind is wire-encodable.
    pub fn to_wire(&self) -> Option<HintWire> {
        match *self {
            Hint::Movement(m) => Some(HintWire::Movement(m)),
            Hint::Heading(h) => Some(HintWire::Heading(h)),
            Hint::Speed(s) => Some(HintWire::Speed(s)),
            Hint::Position(_) => None,
        }
    }

    /// Build from a received wire hint.
    pub fn from_wire(w: HintWire) -> Hint {
        match w {
            HintWire::Movement(m) => Hint::Movement(m),
            HintWire::Heading(h) => Hint::Heading(h),
            HintWire::Speed(s) => Hint::Speed(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_variants() {
        assert_eq!(Hint::Movement(true).kind(), HintKind::Movement);
        assert_eq!(Hint::Heading(10.0).kind(), HintKind::Heading);
        assert_eq!(Hint::Speed(1.0).kind(), HintKind::Speed);
        assert_eq!(
            Hint::Position(Position { x: 0.0, y: 0.0 }).kind(),
            HintKind::Position
        );
    }

    #[test]
    fn wire_roundtrip_for_encodable_kinds() {
        for h in [Hint::Movement(true), Hint::Heading(42.0), Hint::Speed(3.5)] {
            let w = h.to_wire().expect("encodable");
            let bytes = w.encode();
            let back = Hint::from_wire(HintWire::decode(bytes).expect("valid"));
            assert_eq!(back.kind(), h.kind());
        }
    }

    #[test]
    fn position_is_local_only() {
        assert!(Hint::Position(Position { x: 1.0, y: 2.0 })
            .to_wire()
            .is_none());
    }
}
