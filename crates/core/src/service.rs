//! The device-local hint service.
//!
//! "When queried, the movement hint service returns the most recently
//! calculated hint value" (Sec. 2.2.1). The service is the stack-facing
//! cache of the sensor pipelines' latest outputs, one slot per hint kind,
//! each stamped with its update time so consumers can ignore stale hints.

use crate::hint::{Hint, HintKind};
use hint_sensors::hints::MobilityHints;
use hint_sensors::{HeadingHint, MovementHint, PositionHint, SpeedHint};
use hint_sim::{SimDuration, SimTime};

/// One cached hint with its update timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedHint {
    /// The hint value.
    pub hint: Hint,
    /// When the pipeline last updated it.
    pub updated_at: SimTime,
}

/// The hint service: latest value per hint kind.
#[derive(Clone, Debug, Default)]
pub struct HintService {
    movement: Option<TimedHint>,
    heading: Option<TimedHint>,
    speed: Option<TimedHint>,
    position: Option<TimedHint>,
}

impl HintService {
    /// A service with no hints yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a new hint value at time `now`.
    pub fn publish(&mut self, now: SimTime, hint: Hint) {
        let slot = match hint.kind() {
            HintKind::Movement => &mut self.movement,
            HintKind::Heading => &mut self.heading,
            HintKind::Speed => &mut self.speed,
            HintKind::Position => &mut self.position,
        };
        *slot = Some(TimedHint {
            hint,
            updated_at: now,
        });
    }

    /// The most recent hint of `kind`, if any.
    pub fn query(&self, kind: HintKind) -> Option<TimedHint> {
        match kind {
            HintKind::Movement => self.movement,
            HintKind::Heading => self.heading,
            HintKind::Speed => self.speed,
            HintKind::Position => self.position,
        }
    }

    /// Like [`HintService::query`], but only if updated within `max_age`
    /// of `now` — consumers of fast-changing hints (movement, heading)
    /// should not act on stale values.
    pub fn query_fresh(
        &self,
        kind: HintKind,
        now: SimTime,
        max_age: SimDuration,
    ) -> Option<TimedHint> {
        self.query(kind)
            .filter(|t| now.saturating_since(t.updated_at) <= max_age)
    }

    /// The movement hint as a plain bool (`false` when absent — a device
    /// with no movement pipeline behaves as static, matching `H_0 = 0`).
    pub fn is_moving(&self) -> bool {
        matches!(
            self.movement,
            Some(TimedHint {
                hint: Hint::Movement(true),
                ..
            })
        )
    }

    /// Snapshot as the sensor-layer [`MobilityHints`] bundle.
    pub fn snapshot(&self) -> MobilityHints {
        MobilityHints {
            movement: match self.movement {
                Some(TimedHint {
                    hint: Hint::Movement(m),
                    ..
                }) => Some(MovementHint(m)),
                _ => None,
            },
            heading: match self.heading {
                Some(TimedHint {
                    hint: Hint::Heading(h),
                    ..
                }) => Some(HeadingHint::new(h)),
                _ => None,
            },
            speed: match self.speed {
                Some(TimedHint {
                    hint: Hint::Speed(s),
                    ..
                }) => Some(SpeedHint::new(s)),
                _ => None,
            },
            position: match self.position {
                Some(TimedHint {
                    hint: Hint::Position(p),
                    ..
                }) => Some(PositionHint(p)),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_query() {
        let mut s = HintService::new();
        assert_eq!(s.query(HintKind::Movement), None);
        assert!(!s.is_moving());
        s.publish(SimTime::from_secs(1), Hint::Movement(true));
        assert!(s.is_moving());
        let t = s.query(HintKind::Movement).unwrap();
        assert_eq!(t.updated_at, SimTime::from_secs(1));
        // Newer value replaces.
        s.publish(SimTime::from_secs(2), Hint::Movement(false));
        assert!(!s.is_moving());
    }

    #[test]
    fn freshness_filter() {
        let mut s = HintService::new();
        s.publish(SimTime::from_secs(1), Hint::Heading(90.0));
        assert!(s
            .query_fresh(
                HintKind::Heading,
                SimTime::from_secs(2),
                SimDuration::from_secs(5)
            )
            .is_some());
        assert!(s
            .query_fresh(
                HintKind::Heading,
                SimTime::from_secs(10),
                SimDuration::from_secs(5)
            )
            .is_none());
    }

    #[test]
    fn snapshot_collects_all_kinds() {
        let mut s = HintService::new();
        let snap = s.snapshot();
        assert!(snap.movement.is_none() && snap.heading.is_none());
        s.publish(SimTime::ZERO, Hint::Movement(true));
        s.publish(SimTime::ZERO, Hint::Heading(45.0));
        s.publish(SimTime::ZERO, Hint::Speed(1.4));
        let snap = s.snapshot();
        assert!(snap.is_moving());
        assert_eq!(snap.heading.unwrap().degrees(), 45.0);
        assert_eq!(snap.speed.unwrap().mps(), 1.4);
        assert!(snap.position.is_none());
    }

    #[test]
    fn kinds_are_independent_slots() {
        let mut s = HintService::new();
        s.publish(SimTime::ZERO, Hint::Movement(true));
        s.publish(SimTime::from_secs(1), Hint::Speed(2.0));
        assert!(s.is_moving());
        assert_eq!(
            s.query(HintKind::Movement).unwrap().updated_at,
            SimTime::ZERO
        );
        assert_eq!(
            s.query(HintKind::Speed).unwrap().updated_at,
            SimTime::from_secs(1)
        );
    }
}
