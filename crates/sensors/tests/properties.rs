//! Property-based tests for sensor models and hint extraction.

use hint_sensors::accelerometer::{Accelerometer, ForceReport, ACCEL_REPORT_PERIOD};
use hint_sensors::compass::heading_difference;
use hint_sensors::hints::{HeadingHint, SpeedHint};
use hint_sensors::jerk::{MovementDetector, JERK_THRESHOLD};
use hint_sensors::motion::{MotionProfile, MotionSegment, MotionState};
use hint_sim::{RngStream, SimDuration, SimTime};
use proptest::prelude::*;

/// Strategy for a random motion segment.
fn segment() -> impl Strategy<Value = MotionSegment> {
    (0u8..3, 1u64..20, 0.0f64..360.0, 0.5f64..20.0).prop_map(|(kind, secs, heading, speed)| {
        let state = match kind {
            0 => MotionState::Static,
            1 => MotionState::Walking {
                speed_mps: speed.min(2.5),
            },
            _ => MotionState::Vehicle { speed_mps: speed },
        };
        MotionSegment {
            state,
            duration: SimDuration::from_secs(secs),
            heading_deg: heading,
        }
    })
}

proptest! {
    /// Profile queries must be consistent: state_at agrees with is_moving_at
    /// and speed_at, and moving_fraction is in [0,1].
    #[test]
    fn profile_queries_consistent(segs in proptest::collection::vec(segment(), 1..8)) {
        let p = MotionProfile::new(segs);
        let dur = p.duration().as_micros();
        for i in 0..50 {
            let t = SimTime::from_micros(dur * i / 50);
            let st = p.state_at(t);
            prop_assert_eq!(st.is_moving(), p.is_moving_at(t));
            prop_assert_eq!(st.speed_mps(), p.speed_at(t));
            prop_assert!(p.speed_at(t) >= 0.0);
        }
        let f = p.moving_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Transition times must be strictly increasing and bounded by the
    /// profile duration.
    #[test]
    fn transitions_sorted_and_bounded(segs in proptest::collection::vec(segment(), 1..8)) {
        let p = MotionProfile::new(segs);
        let ts = p.transition_times();
        for w in ts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for t in &ts {
            prop_assert!(t.as_micros() <= p.duration().as_micros());
        }
    }

    /// The jerk value is always finite and non-negative, for arbitrary
    /// force inputs (including adversarial spikes).
    #[test]
    fn jerk_finite_nonnegative(forces in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0), 0..200)) {
        let mut det = MovementDetector::new();
        for (i, &(x, y, z)) in forces.iter().enumerate() {
            let r = ForceReport {
                t: SimTime::ZERO + ACCEL_REPORT_PERIOD * i as u64,
                x, y, z,
            };
            let s = det.push(&r);
            prop_assert!(s.jerk.is_finite());
            prop_assert!(s.jerk >= 0.0);
        }
    }

    /// A constant input stream (any constant) never raises the hint.
    #[test]
    fn constant_force_never_moves(x in -50.0f64..50.0, y in -50.0f64..50.0, z in -50.0f64..50.0) {
        let mut det = MovementDetector::new();
        for i in 0..200u64 {
            let s = det.push(&ForceReport {
                t: SimTime::ZERO + ACCEL_REPORT_PERIOD * i,
                x, y, z,
            });
            prop_assert!(!s.moving);
            prop_assert_eq!(s.jerk, 0.0);
        }
    }

    /// After any input history, 100 consecutive identical reports clear the
    /// hint (hysteresis always terminates).
    #[test]
    fn hint_always_clears_on_quiet(
        noise in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0), 1..100)
    ) {
        let mut det = MovementDetector::new();
        let mut idx = 0u64;
        for &(x, y, z) in &noise {
            det.push(&ForceReport { t: SimTime::ZERO + ACCEL_REPORT_PERIOD * idx, x, y, z });
            idx += 1;
        }
        let mut final_state = det.is_moving();
        for _ in 0..100 {
            let s = det.push(&ForceReport {
                t: SimTime::ZERO + ACCEL_REPORT_PERIOD * idx,
                x: 1.0, y: 2.0, z: 9.3,
            });
            idx += 1;
            final_state = s.moving;
        }
        prop_assert!(!final_state, "hint stuck after 100 quiet reports");
    }

    /// heading_difference is symmetric, bounded by [0,180], zero on self,
    /// and invariant to full rotations.
    #[test]
    fn heading_difference_properties(a in -720.0f64..720.0, b in -720.0f64..720.0) {
        let d = heading_difference(a, b);
        prop_assert!((0.0..=180.0).contains(&d));
        prop_assert!((heading_difference(b, a) - d).abs() < 1e-9);
        prop_assert!(heading_difference(a, a) < 1e-9);
        prop_assert!((heading_difference(a + 360.0, b) - d).abs() < 1e-9);
    }

    /// HeadingHint normalisation always lands in [0,360).
    #[test]
    fn heading_hint_normalises(deg in -1e4f64..1e4) {
        let h = HeadingHint::new(deg);
        prop_assert!((0.0..360.0).contains(&h.degrees()));
    }

    /// SpeedHint is never negative and converts consistently.
    #[test]
    fn speed_hint_nonnegative(mps in -100.0f64..100.0) {
        let s = SpeedHint::new(mps);
        prop_assert!(s.mps() >= 0.0);
        prop_assert!((s.kmh() - s.mps() * 3.6).abs() < 1e-9);
    }

    /// The accelerometer stream is deterministic in its seed for any
    /// profile shape.
    #[test]
    fn accelerometer_deterministic(seed in any::<u64>(), segs in proptest::collection::vec(segment(), 1..4)) {
        let p = MotionProfile::new(segs);
        let mut a = Accelerometer::new(p.clone(), RngStream::new(seed).derive("acc"));
        let mut b = Accelerometer::new(p, RngStream::new(seed).derive("acc"));
        for _ in 0..64 {
            prop_assert_eq!(a.next_report(), b.next_report());
        }
    }
}

/// End-to-end statistical check kept out of proptest (single deterministic
/// seed): the detector's output must agree with ground truth >90% of the
/// time over a long alternating trace.
#[test]
fn detector_tracks_ground_truth_on_alternating_trace() {
    let profile = MotionProfile::alternating(SimDuration::from_secs(8), 4);
    let mut accel = Accelerometer::new(profile.clone(), RngStream::new(31337).derive("alt"));
    let mut det = MovementDetector::new();
    let end = profile.duration();
    let mut agree = 0u64;
    let mut total = 0u64;
    loop {
        let r = accel.next_report();
        if r.t.as_micros() >= end.as_micros() {
            break;
        }
        let s = det.push(&r);
        total += 1;
        if s.moving == profile.is_moving_at(r.t) {
            agree += 1;
        }
    }
    let frac = agree as f64 / total as f64;
    assert!(frac > 0.9, "detector agreement {frac:.3}");
    assert_eq!(
        total,
        end.as_micros() / ACCEL_REPORT_PERIOD.as_micros(),
        "every 2 ms report consumed"
    );
}

/// The movement hint must detect all four transitions of a two-pair
/// alternating profile with bounded latency.
#[test]
fn detector_latency_bounded_on_every_transition() {
    let profile = MotionProfile::alternating(SimDuration::from_secs(10), 2);
    let mut accel = Accelerometer::new(profile.clone(), RngStream::new(777).derive("lat"));
    let mut det = MovementDetector::new();
    let transitions = profile.transition_times();
    let mut detected: Vec<Option<SimTime>> = vec![None; transitions.len()];
    let end = profile.duration();
    loop {
        let r = accel.next_report();
        if r.t.as_micros() >= end.as_micros() {
            break;
        }
        let s = det.push(&r);
        for (i, &tt) in transitions.iter().enumerate() {
            if detected[i].is_none() && r.t >= tt {
                let want_moving = profile.is_moving_at(tt);
                if s.moving == want_moving {
                    detected[i] = Some(r.t);
                }
            }
        }
    }
    for (i, (&tt, det_t)) in transitions.iter().zip(&detected).enumerate() {
        let dt = det_t
            .unwrap_or_else(|| panic!("transition {i} never detected"))
            .saturating_since(tt);
        assert!(
            dt <= SimDuration::from_millis(500),
            "transition {i} latency {dt}"
        );
    }
}

/// Static traces must keep jerk below threshold for the entire duration —
/// the Fig. 2-2 "never exceeds 3 when stationary" claim.
#[test]
fn long_static_trace_never_crosses_threshold() {
    let profile = MotionProfile::stationary(SimDuration::from_secs(60));
    let mut accel = Accelerometer::new(profile, RngStream::new(4242).derive("quiet"));
    let mut det = MovementDetector::new();
    for _ in 0..30_000 {
        let r = accel.next_report();
        let s = det.push(&r);
        assert!(s.jerk < JERK_THRESHOLD, "jerk {} at {:?}", s.jerk, r.t);
        assert!(!s.moving);
    }
}
