//! Indoor positioning by WiFi localization (Sec. 2.2.3).
//!
//! "For indoor positioning, we can use WiFi localization." The standard
//! technique is RSSI multilateration against APs at known positions: each
//! RSSI reading implies a distance through the log-distance path-loss
//! model; a weighted least-squares descent fits the position.
//!
//! Accuracy is metres-scale — far coarser than GPS headings, which is why
//! the paper's indoor protocols lean on the movement and heading hints and
//! use position only for slower decisions (e.g. AP association scoring).

use crate::gps::Position;
use hint_sim::RngStream;

/// Log-distance path-loss model: `rssi = tx_dbm − 10·n·log10(d/1m)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathLossModel {
    /// RSSI at 1 m, dBm.
    pub tx_dbm: f64,
    /// Path-loss exponent (indoor: 2.5–4).
    pub exponent: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel {
            tx_dbm: -40.0,
            exponent: 3.0,
        }
    }
}

impl PathLossModel {
    /// Expected RSSI at distance `d_m` (d clamped to ≥ 0.5 m).
    pub fn rssi_at(&self, d_m: f64) -> f64 {
        self.tx_dbm - 10.0 * self.exponent * d_m.max(0.5).log10()
    }

    /// Distance implied by an RSSI reading.
    pub fn distance_for(&self, rssi_dbm: f64) -> f64 {
        10f64.powf((self.tx_dbm - rssi_dbm) / (10.0 * self.exponent))
    }
}

/// One AP observation: known position + measured RSSI.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApObservation {
    /// The AP's surveyed position, metres.
    pub position: Position,
    /// Measured RSSI, dBm.
    pub rssi_dbm: f64,
}

/// Simulate a scan: RSSI from each AP at the true position, with
/// log-normal shadowing noise of `sigma_db`.
pub fn simulate_scan(
    aps: &[Position],
    true_pos: Position,
    model: &PathLossModel,
    sigma_db: f64,
    rng: &mut RngStream,
) -> Vec<ApObservation> {
    aps.iter()
        .map(|&ap| ApObservation {
            position: ap,
            rssi_dbm: model.rssi_at(ap.distance(true_pos)) + rng.normal() * sigma_db,
        })
        .collect()
}

/// Estimate a position from AP observations by weighted least-squares
/// gradient descent on the range residuals. Returns `None` with fewer
/// than three observations (the 2-D problem is underdetermined).
pub fn localize(obs: &[ApObservation], model: &PathLossModel) -> Option<Position> {
    if obs.len() < 3 {
        return None;
    }
    // Initialise at the RSSI-weighted centroid (stronger = closer).
    let mut wsum = 0.0;
    let mut x = 0.0;
    let mut y = 0.0;
    for o in obs {
        let w = 10f64.powf(o.rssi_dbm / 20.0);
        wsum += w;
        x += w * o.position.x;
        y += w * o.position.y;
    }
    let mut p = Position {
        x: x / wsum,
        y: y / wsum,
    };

    // Gauss–Newton-ish descent on Σ wᵢ (|p − apᵢ| − rᵢ)².
    let ranges: Vec<f64> = obs.iter().map(|o| model.distance_for(o.rssi_dbm)).collect();
    for _ in 0..200 {
        let mut gx = 0.0;
        let mut gy = 0.0;
        for (o, &r) in obs.iter().zip(&ranges) {
            let dx = p.x - o.position.x;
            let dy = p.y - o.position.y;
            let d = (dx * dx + dy * dy).sqrt().max(0.1);
            // Near APs carry more information (their range error in
            // metres is smaller for the same dB error).
            let w = 1.0 / r.max(1.0);
            let res = d - r;
            gx += w * res * dx / d;
            gy += w * res * dy / d;
        }
        p.x -= 0.5 * gx;
        p.y -= 0.5 * gy;
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_aps() -> Vec<Position> {
        vec![
            Position { x: 0.0, y: 0.0 },
            Position { x: 40.0, y: 0.0 },
            Position { x: 0.0, y: 40.0 },
            Position { x: 40.0, y: 40.0 },
            Position { x: 20.0, y: 20.0 },
        ]
    }

    #[test]
    fn path_loss_roundtrip() {
        let m = PathLossModel::default();
        for d in [1.0, 5.0, 20.0, 80.0] {
            let rssi = m.rssi_at(d);
            assert!((m.distance_for(rssi) - d).abs() < 1e-9);
        }
        // Monotone: farther = weaker.
        assert!(m.rssi_at(10.0) < m.rssi_at(2.0));
    }

    #[test]
    fn noiseless_localization_is_exact() {
        let m = PathLossModel::default();
        let truth = Position { x: 13.0, y: 27.0 };
        let obs: Vec<ApObservation> = square_aps()
            .into_iter()
            .map(|ap| ApObservation {
                position: ap,
                rssi_dbm: m.rssi_at(ap.distance(truth)),
            })
            .collect();
        let est = localize(&obs, &m).expect("enough APs");
        assert!(
            est.distance(truth) < 0.5,
            "error {:.2} m",
            est.distance(truth)
        );
    }

    #[test]
    fn noisy_localization_is_metres_scale() {
        let m = PathLossModel::default();
        let mut rng = RngStream::new(77).derive("wifi-loc");
        let mut errs = Vec::new();
        for i in 0..50 {
            let truth = Position {
                x: 5.0 + (i as f64 * 7.3) % 30.0,
                y: 5.0 + (i as f64 * 11.1) % 30.0,
            };
            let obs = simulate_scan(&square_aps(), truth, &m, 3.0, &mut rng);
            let est = localize(&obs, &m).expect("enough APs");
            errs.push(est.distance(truth));
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        // Typical WiFi localization accuracy: a few metres.
        assert!((0.5..8.0).contains(&mean), "mean error {mean:.1} m");
        let max = errs.iter().cloned().fold(0.0, f64::max);
        assert!(max < 25.0, "max error {max:.1} m");
    }

    #[test]
    fn underdetermined_scans_return_none() {
        let m = PathLossModel::default();
        assert_eq!(localize(&[], &m), None);
        let two: Vec<ApObservation> = square_aps()
            .into_iter()
            .take(2)
            .map(|ap| ApObservation {
                position: ap,
                rssi_dbm: -60.0,
            })
            .collect();
        assert_eq!(localize(&two, &m), None);
    }
}
