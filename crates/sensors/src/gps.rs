//! GPS model (Sec. 2.2.3).
//!
//! Outdoors, GPS provides position, speed and heading fixes at ~1 Hz with
//! metre-scale position noise; indoors it does not lock at all. The paper
//! uses the *absence of a lock* as a cheap outdoor/indoor discriminator
//! (Sec. 5.3), so availability is part of the model, not an error case.

use crate::motion::MotionProfile;
use hint_sim::{RngStream, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A 2-D position in metres on a local tangent plane (x east, y north).
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Metres east of the origin.
    pub x: f64,
    /// Metres north of the origin.
    pub y: f64,
}

impl Position {
    /// Euclidean distance to another position, metres.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// One GPS fix.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpsFix {
    /// Fix timestamp.
    pub t: SimTime,
    /// Estimated position (noisy).
    pub position: Position,
    /// Estimated ground speed, m/s (noisy, floored at 0).
    pub speed_mps: f64,
    /// Estimated course over ground, degrees `[0, 360)`. Meaningless at
    /// near-zero speed, as with real receivers.
    pub heading_deg: f64,
}

/// Synthetic GPS receiver bound to a ground-truth motion profile.
#[derive(Clone, Debug)]
pub struct Gps {
    profile: MotionProfile,
    rng: RngStream,
    /// Whether the device is outdoors (GPS only locks outdoors).
    outdoors: bool,
    /// Position noise std-dev, metres (typical consumer GPS ≈ 3–5 m).
    pub position_noise_m: f64,
    /// Speed noise std-dev, m/s.
    pub speed_noise_mps: f64,
    /// Heading noise std-dev, degrees.
    pub heading_noise_deg: f64,
    /// Fix interval (1 Hz by default).
    pub fix_interval: SimDuration,
    /// Dead-reckoned true position integrated from the profile.
    true_pos: Position,
    last_integrated: SimTime,
}

impl Gps {
    /// Create an outdoor GPS receiver observing `profile`.
    pub fn outdoor(profile: MotionProfile, rng: RngStream) -> Self {
        Gps {
            profile,
            rng,
            outdoors: true,
            position_noise_m: 4.0,
            speed_noise_mps: 0.3,
            heading_noise_deg: 5.0,
            fix_interval: SimDuration::from_secs(1),
            true_pos: Position::default(),
            last_integrated: SimTime::ZERO,
        }
    }

    /// Create an indoor receiver: it never produces a fix.
    pub fn indoor(profile: MotionProfile, rng: RngStream) -> Self {
        let mut g = Gps::outdoor(profile, rng);
        g.outdoors = false;
        g
    }

    /// Whether the receiver currently has a lock (Sec. 5.3's outdoor test).
    pub fn has_lock(&self) -> bool {
        self.outdoors
    }

    /// Advance ground truth to time `t` by integrating the profile at the
    /// fix granularity.
    fn integrate_to(&mut self, t: SimTime) {
        // Integrate in 100 ms steps for accuracy through segment changes.
        let step = SimDuration::from_millis(100);
        while self.last_integrated + step <= t {
            let mid = self.last_integrated;
            let speed = self.profile.speed_at(mid);
            let heading = self.profile.heading_at(mid).to_radians();
            let dt = step.as_secs_f64();
            self.true_pos.x += speed * dt * heading.sin();
            self.true_pos.y += speed * dt * heading.cos();
            self.last_integrated += step;
        }
    }

    /// The ground-truth position at the last integration point (test aid).
    pub fn true_position(&self) -> Position {
        self.true_pos
    }

    /// Take a fix at time `t`. Returns `None` indoors (no lock).
    ///
    /// Fixes should be requested in non-decreasing time order; requests
    /// between fix intervals simply reflect the latest integrated truth.
    pub fn fix_at(&mut self, t: SimTime) -> Option<GpsFix> {
        if !self.outdoors {
            return None;
        }
        self.integrate_to(t);
        let speed_true = self.profile.speed_at(t);
        let heading_true = self.profile.heading_at(t);
        Some(GpsFix {
            t,
            position: Position {
                x: self.true_pos.x + self.rng.normal() * self.position_noise_m,
                y: self.true_pos.y + self.rng.normal() * self.position_noise_m,
            },
            speed_mps: (speed_true + self.rng.normal() * self.speed_noise_mps).max(0.0),
            heading_deg: (heading_true + self.rng.normal() * self.heading_noise_deg)
                .rem_euclid(360.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::new(77).derive("gps")
    }

    #[test]
    fn indoor_never_locks() {
        let p = MotionProfile::stationary(SimDuration::from_secs(10));
        let mut g = Gps::indoor(p, rng());
        assert!(!g.has_lock());
        assert!(g.fix_at(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn stationary_fixes_cluster_near_origin() {
        let p = MotionProfile::stationary(SimDuration::from_secs(100));
        let mut g = Gps::outdoor(p, rng());
        for s in 1..=50 {
            let fix = g.fix_at(SimTime::from_secs(s)).unwrap();
            assert!(fix.position.distance(Position::default()) < 20.0);
            assert!(fix.speed_mps < 1.5);
        }
    }

    #[test]
    fn moving_fixes_track_true_displacement() {
        // 10 m/s due east for 60 s → ~600 m east.
        let p = MotionProfile::vehicle(SimDuration::from_secs(60), 10.0, 90.0);
        let mut g = Gps::outdoor(p, rng());
        let fix = g.fix_at(SimTime::from_secs(60)).unwrap();
        assert!(
            (fix.position.x - 600.0).abs() < 20.0,
            "x {}",
            fix.position.x
        );
        assert!(fix.position.y.abs() < 20.0, "y {}", fix.position.y);
        assert!((fix.speed_mps - 10.0).abs() < 1.5);
        // Heading near 90°.
        let err = (fix.heading_deg - 90.0)
            .abs()
            .min(360.0 - (fix.heading_deg - 90.0).abs());
        assert!(err < 20.0, "heading {}", fix.heading_deg);
    }

    #[test]
    fn heading_wraps_into_range() {
        let p = MotionProfile::vehicle(SimDuration::from_secs(10), 10.0, 359.0);
        let mut g = Gps::outdoor(p, rng());
        for s in 1..=10 {
            let fix = g.fix_at(SimTime::from_secs(s)).unwrap();
            assert!((0.0..360.0).contains(&fix.heading_deg));
        }
    }

    #[test]
    fn position_distance_is_euclidean() {
        let a = Position { x: 0.0, y: 0.0 };
        let b = Position { x: 3.0, y: 4.0 };
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }
}
