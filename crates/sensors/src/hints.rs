//! Mobility hint values (Sec. 2.2).
//!
//! "Hints about mobility include movement, heading, speed and position."
//! These are the value types the sensor layer produces and every hint-aware
//! protocol consumes; the over-the-air encoding lives in `hint-mac`, and
//! the publish/subscribe architecture in the `sensor-hints` core crate.

use crate::gps::Position;
use serde::{Deserialize, Serialize};

/// Movement hint: "a boolean hint that is true if, and only if, a device is
/// moving" (Sec. 2.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovementHint(pub bool);

impl MovementHint {
    /// True when the device is in motion.
    pub fn is_moving(self) -> bool {
        self.0
    }
}

/// Heading hint in degrees `[0, 360)` clockwise from north (Sec. 2.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeadingHint(pub f64);

impl HeadingHint {
    /// Construct, normalising into `[0, 360)`.
    pub fn new(deg: f64) -> Self {
        HeadingHint(deg.rem_euclid(360.0))
    }

    /// Heading in degrees.
    pub fn degrees(self) -> f64 {
        self.0
    }

    /// Smallest absolute difference to another heading, degrees `[0, 180]`.
    pub fn difference(self, other: HeadingHint) -> f64 {
        crate::compass::heading_difference(self.0, other.0)
    }
}

/// Speed hint in metres/second (Sec. 2.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedHint(pub f64);

impl SpeedHint {
    /// Speed in m/s (non-negative by construction).
    pub fn new(mps: f64) -> Self {
        SpeedHint(mps.max(0.0))
    }

    /// Speed in m/s.
    pub fn mps(self) -> f64 {
        self.0
    }

    /// Speed in km/h.
    pub fn kmh(self) -> f64 {
        self.0 * 3.6
    }
}

/// Position hint on the local tangent plane (Sec. 2.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PositionHint(pub Position);

/// A device's full current hint set, as a hint service would report when
/// queried. Absent hints (e.g. heading indoors without a compass) are
/// `None`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MobilityHints {
    /// Movement hint, if the movement service is running.
    pub movement: Option<MovementHint>,
    /// Heading hint, if available.
    pub heading: Option<HeadingHint>,
    /// Speed hint, if available.
    pub speed: Option<SpeedHint>,
    /// Position hint, if available.
    pub position: Option<PositionHint>,
}

impl MobilityHints {
    /// No hints at all (hint-oblivious device).
    pub fn none() -> Self {
        Self::default()
    }

    /// Only a movement hint — the common indoor accelerometer-only case
    /// used by the Ch. 3 and Ch. 4 protocols.
    pub fn movement_only(moving: bool) -> Self {
        MobilityHints {
            movement: Some(MovementHint(moving)),
            ..Default::default()
        }
    }

    /// True if a movement hint is present and indicates motion.
    pub fn is_moving(&self) -> bool {
        self.movement.map(MovementHint::is_moving).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heading_normalises() {
        assert_eq!(HeadingHint::new(370.0).degrees(), 10.0);
        assert_eq!(HeadingHint::new(-10.0).degrees(), 350.0);
        assert!((HeadingHint::new(350.0).difference(HeadingHint::new(10.0)) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn speed_clamps_and_converts() {
        assert_eq!(SpeedHint::new(-3.0).mps(), 0.0);
        assert!((SpeedHint::new(10.0).kmh() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn mobility_hints_defaults() {
        let h = MobilityHints::none();
        assert!(!h.is_moving());
        assert!(h.movement.is_none());
        let m = MobilityHints::movement_only(true);
        assert!(m.is_moving());
        assert!(m.heading.is_none());
    }
}
