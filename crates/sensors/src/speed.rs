//! Indoor speed estimation from the accelerometer (Sec. 2.2.3).
//!
//! "Indoors, we can approximate the speed by integrating the time-series
//! of values reported by the accelerometer (the results will be more
//! approximate than outdoors, but the range of speeds is a lot smaller)."
//!
//! Naïve double integration of raw force diverges within seconds (bias and
//! gravity leakage integrate quadratically), so practical pedestrian
//! estimators anchor the integral with **zero-velocity updates**: whenever
//! the movement hint says the device is still, the velocity estimate is
//! reset and the accumulated bias re-estimated. That is exactly the
//! synergy available here — the Sec. 2.2.1 movement hint provides the
//! stillness anchor for the Sec. 2.2.3 speed estimate.

use crate::accelerometer::{ForceReport, ACCEL_REPORT_PERIOD};
use crate::jerk::MovementDetector;

/// Custom-unit-to-m/s² conversion for the synthetic sensor. The paper's
/// hint algorithms never calibrate; the speed estimator is the one place
/// a scale is needed, and it is a per-sensor-type constant (like the jerk
/// threshold), not a per-device calibration.
pub const FORCE_UNIT_TO_MS2: f64 = 1.0;

/// Walking-band clamp, m/s. Indoor speeds live well below 3 m/s; the
/// clamp bounds integration error ("the range of speeds is a lot
/// smaller").
pub const MAX_INDOOR_SPEED: f64 = 3.0;

/// Streaming indoor speed estimator.
///
/// Feed every accelerometer report; query [`IndoorSpeedEstimator::speed_mps`].
#[derive(Clone, Debug)]
pub struct IndoorSpeedEstimator {
    detector: MovementDetector,
    /// Estimated per-axis force bias (gravity + mounting), custom units.
    bias: [f64; 3],
    /// Horizontal-plane velocity estimate, m/s (magnitude tracked
    /// directly; heading comes from the compass/gyro pipeline instead).
    speed: f64,
    /// Samples seen while still, for bias averaging.
    still_samples: u64,
    /// Smoothed output.
    smoothed: f64,
}

impl Default for IndoorSpeedEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl IndoorSpeedEstimator {
    /// Fresh estimator (speed 0 until the device moves).
    pub fn new() -> Self {
        IndoorSpeedEstimator {
            detector: MovementDetector::new(),
            bias: [0.0; 3],
            speed: 0.0,
            still_samples: 0,
            smoothed: 0.0,
        }
    }

    /// Current speed estimate, m/s.
    pub fn speed_mps(&self) -> f64 {
        self.smoothed
    }

    /// Whether the embedded movement detector currently reports motion.
    pub fn is_moving(&self) -> bool {
        self.detector.is_moving()
    }

    /// Feed one 2 ms force report; returns the updated speed estimate.
    pub fn push(&mut self, report: &ForceReport) -> f64 {
        let moving = self.detector.push(report).moving;
        let dt = ACCEL_REPORT_PERIOD.as_secs_f64();

        if !moving {
            // Zero-velocity update: anchor the integral and refine the
            // bias estimate with a running mean.
            self.speed = 0.0;
            self.still_samples += 1;
            let n = self.still_samples.min(5_000) as f64;
            self.bias[0] += (report.x - self.bias[0]) / n;
            self.bias[1] += (report.y - self.bias[1]) / n;
            self.bias[2] += (report.z - self.bias[2]) / n;
        } else {
            // Integrate the bias-corrected horizontal force magnitude.
            // Oscillatory gait forces mostly cancel over a stride; what
            // survives integration tracks sustained acceleration, and the
            // walking-band clamp bounds the residual drift.
            let ax = (report.x - self.bias[0]) * FORCE_UNIT_TO_MS2;
            let ay = (report.y - self.bias[1]) * FORCE_UNIT_TO_MS2;
            let a_h = (ax * ax + ay * ay).sqrt();
            // Gait model: net forward acceleration is a small fraction of
            // the oscillation amplitude; integrate with strong leak so the
            // estimate settles at a level proportional to shake intensity.
            self.speed += (0.35 * a_h - 1.8 * self.speed) * dt;
            self.speed = self.speed.clamp(0.0, MAX_INDOOR_SPEED);
        }

        // Output smoothing (~0.5 s).
        self.smoothed += (self.speed - self.smoothed) * (dt / 0.5).min(1.0);
        self.smoothed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerometer::Accelerometer;
    use crate::motion::MotionProfile;
    use hint_sim::{RngStream, SimDuration, SimTime};

    fn run(profile: MotionProfile, seed: u64) -> Vec<(SimTime, f64)> {
        let dur = profile.duration();
        let mut accel = Accelerometer::new(profile, RngStream::new(seed).derive("speed"));
        let mut est = IndoorSpeedEstimator::new();
        let mut out = Vec::new();
        loop {
            let r = accel.next_report();
            if r.t.as_micros() >= dur.as_micros() {
                break;
            }
            let s = est.push(&r);
            out.push((r.t, s));
        }
        out
    }

    #[test]
    fn static_device_reads_zero() {
        let series = run(MotionProfile::stationary(SimDuration::from_secs(30)), 1);
        let max = series.iter().map(|s| s.1).fold(0.0, f64::max);
        assert!(max < 0.1, "static speed estimate {max}");
    }

    #[test]
    fn walking_reads_in_the_walking_band() {
        let series = run(
            MotionProfile::walking(SimDuration::from_secs(60), 1.4, 0.0),
            2,
        );
        // Score the settled portion.
        let settled: Vec<f64> = series
            .iter()
            .filter(|(t, _)| *t > SimTime::from_secs(10))
            .map(|(_, s)| *s)
            .collect();
        let mean = settled.iter().sum::<f64>() / settled.len() as f64;
        assert!(
            (0.3..=3.0).contains(&mean),
            "walking estimate {mean:.2} m/s out of band"
        );
    }

    #[test]
    fn speed_resets_when_stopping() {
        let profile = MotionProfile::static_move_static(
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
            SimDuration::from_secs(20),
        );
        let series = run(profile, 3);
        // Mid-walk: positive estimate.
        let mid = series
            .iter()
            .find(|(t, _)| *t >= SimTime::from_secs(25))
            .unwrap()
            .1;
        assert!(mid > 0.2, "mid-walk {mid:.2}");
        // Two seconds after stopping: back near zero.
        let after = series
            .iter()
            .find(|(t, _)| *t >= SimTime::from_secs(33))
            .unwrap()
            .1;
        assert!(after < 0.15, "post-stop {after:.2}");
    }

    #[test]
    fn estimate_never_exceeds_clamp_or_goes_negative() {
        let series = run(
            MotionProfile::walking(SimDuration::from_secs(30), 2.5, 0.0),
            4,
        );
        for (_, s) in series {
            assert!((0.0..=MAX_INDOOR_SPEED).contains(&s));
        }
    }

    #[test]
    fn deterministic() {
        let p = MotionProfile::walking(SimDuration::from_secs(5), 1.4, 0.0);
        assert_eq!(run(p.clone(), 9), run(p, 9));
    }
}
