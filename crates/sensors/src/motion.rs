//! Ground-truth mobility schedules.
//!
//! A [`MotionProfile`] is the *actual* motion of a device over a trace —
//! the hidden truth that sensors observe noisily and that the channel model
//! (in `hint-channel`) uses to set its coherence time. The paper's
//! experiment types (Fig. 3-4) map onto profiles directly:
//!
//! * *Stationary* — a single [`MotionState::Static`] segment.
//! * *Human/Mobile* — walking speed (~1.4 m/s) segments.
//! * *Vehicle/Mobile* — driving segments at 8–72 km/h.
//! * Mixed-mobility traces (Fig. 3-5's 10 s static + 10 s mobile) are
//!   segment sequences.

use hint_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The coarse mobility state of a device at an instant.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MotionState {
    /// Not moving (resting on a desk, standing user).
    Static,
    /// Carried by a walking human at roughly the given speed (m/s).
    Walking {
        /// Walking speed in metres/second (typical indoor walk ≈ 1.4).
        speed_mps: f64,
    },
    /// Riding in a vehicle at roughly the given speed (m/s).
    Vehicle {
        /// Vehicle speed in metres/second (paper: 8–72 km/h ≈ 2.2–20 m/s).
        speed_mps: f64,
    },
}

impl MotionState {
    /// True when the device is in motion.
    pub fn is_moving(self) -> bool {
        !matches!(self, MotionState::Static)
    }

    /// Nominal speed in m/s (zero when static).
    pub fn speed_mps(self) -> f64 {
        match self {
            MotionState::Static => 0.0,
            MotionState::Walking { speed_mps } | MotionState::Vehicle { speed_mps } => speed_mps,
        }
    }
}

/// One segment of a motion schedule: a state held for a duration, moving
/// along a heading (degrees clockwise from north; irrelevant when static).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MotionSegment {
    /// Mobility state during the segment.
    pub state: MotionState,
    /// How long the segment lasts.
    pub duration: SimDuration,
    /// Heading of travel in degrees `[0, 360)`, clockwise from north.
    pub heading_deg: f64,
}

/// A piecewise-constant ground-truth mobility schedule.
///
/// Queries past the end of the schedule return the last segment's state, so
/// a profile behaves as if its final segment extends forever — convenient
/// when a trace is slightly longer than the schedule that produced it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MotionProfile {
    segments: Vec<MotionSegment>,
}

impl MotionProfile {
    /// Build from an explicit segment list.
    ///
    /// # Panics
    /// Panics if `segments` is empty (a profile must define some motion).
    pub fn new(segments: Vec<MotionSegment>) -> Self {
        assert!(!segments.is_empty(), "motion profile needs >= 1 segment");
        MotionProfile { segments }
    }

    /// A profile that is static for `duration`.
    pub fn stationary(duration: SimDuration) -> Self {
        MotionProfile::new(vec![MotionSegment {
            state: MotionState::Static,
            duration,
            heading_deg: 0.0,
        }])
    }

    /// A profile walking at `speed_mps` for `duration` along `heading_deg`.
    pub fn walking(duration: SimDuration, speed_mps: f64, heading_deg: f64) -> Self {
        MotionProfile::new(vec![MotionSegment {
            state: MotionState::Walking { speed_mps },
            duration,
            heading_deg,
        }])
    }

    /// A profile driving at `speed_mps` for `duration` along `heading_deg`.
    pub fn vehicle(duration: SimDuration, speed_mps: f64, heading_deg: f64) -> Self {
        MotionProfile::new(vec![MotionSegment {
            state: MotionState::Vehicle { speed_mps },
            duration,
            heading_deg,
        }])
    }

    /// The paper's mixed-mobility trace shape (Fig. 3-5): `first` held for
    /// `half`, then `second` for another `half`. Walking uses 1.4 m/s.
    pub fn half_and_half(half: SimDuration, static_first: bool) -> Self {
        let stat = MotionSegment {
            state: MotionState::Static,
            duration: half,
            heading_deg: 0.0,
        };
        let walk = MotionSegment {
            state: MotionState::Walking { speed_mps: 1.4 },
            duration: half,
            heading_deg: 90.0,
        };
        let segs = if static_first {
            vec![stat, walk]
        } else {
            vec![walk, stat]
        };
        MotionProfile::new(segs)
    }

    /// Fig. 2-2's shape: static, then moving, then static again.
    pub fn static_move_static(lead: SimDuration, moving: SimDuration, tail: SimDuration) -> Self {
        MotionProfile::new(vec![
            MotionSegment {
                state: MotionState::Static,
                duration: lead,
                heading_deg: 0.0,
            },
            MotionSegment {
                state: MotionState::Walking { speed_mps: 1.4 },
                duration: moving,
                heading_deg: 45.0,
            },
            MotionSegment {
                state: MotionState::Static,
                duration: tail,
                heading_deg: 0.0,
            },
        ])
    }

    /// Alternating static/walking segments, `n_pairs` of them — models the
    /// supermarket shopper of the paper's introduction.
    pub fn alternating(each: SimDuration, n_pairs: usize) -> Self {
        assert!(n_pairs > 0, "need at least one pair");
        let mut segs = Vec::with_capacity(n_pairs * 2);
        for i in 0..n_pairs {
            segs.push(MotionSegment {
                state: MotionState::Static,
                duration: each,
                heading_deg: 0.0,
            });
            segs.push(MotionSegment {
                state: MotionState::Walking { speed_mps: 1.4 },
                duration: each,
                heading_deg: (i as f64 * 73.0) % 360.0,
            });
        }
        MotionProfile::new(segs)
    }

    /// The segments making up this profile.
    pub fn segments(&self) -> &[MotionSegment] {
        &self.segments
    }

    /// Total scheduled duration.
    pub fn duration(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration)
    }

    /// The segment active at time `t` (the last segment if `t` is past the
    /// end of the schedule).
    pub fn segment_at(&self, t: SimTime) -> &MotionSegment {
        let mut elapsed = SimDuration::ZERO;
        for seg in &self.segments {
            elapsed += seg.duration;
            if t.as_micros() < elapsed.as_micros() {
                return seg;
            }
        }
        self.segments.last().expect("non-empty by construction")
    }

    /// Mobility state at time `t`.
    pub fn state_at(&self, t: SimTime) -> MotionState {
        self.segment_at(t).state
    }

    /// True if the device is moving at time `t`.
    pub fn is_moving_at(&self, t: SimTime) -> bool {
        self.state_at(t).is_moving()
    }

    /// Ground-truth speed in m/s at time `t`.
    pub fn speed_at(&self, t: SimTime) -> f64 {
        self.state_at(t).speed_mps()
    }

    /// Ground-truth heading in degrees at time `t`.
    pub fn heading_at(&self, t: SimTime) -> f64 {
        self.segment_at(t).heading_deg
    }

    /// Fraction of the schedule spent moving (by time).
    pub fn moving_fraction(&self) -> f64 {
        let total = self.duration().as_micros() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let moving: u64 = self
            .segments
            .iter()
            .filter(|s| s.state.is_moving())
            .map(|s| s.duration.as_micros())
            .sum();
        moving as f64 / total
    }

    /// The times at which the moving/static status flips, in order.
    pub fn transition_times(&self) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut elapsed = SimDuration::ZERO;
        let mut prev = self.segments[0].state.is_moving();
        for seg in &self.segments {
            let moving = seg.state.is_moving();
            if moving != prev {
                out.push(SimTime::ZERO + elapsed);
                prev = moving;
            }
            elapsed += seg.duration;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_queries_follow_schedule() {
        let p = MotionProfile::half_and_half(SimDuration::from_secs(10), true);
        assert!(!p.is_moving_at(SimTime::from_secs(3)));
        assert!(p.is_moving_at(SimTime::from_secs(13)));
        assert_eq!(p.duration(), SimDuration::from_secs(20));
        assert!((p.moving_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mobile_first_variant() {
        let p = MotionProfile::half_and_half(SimDuration::from_secs(10), false);
        assert!(p.is_moving_at(SimTime::from_secs(1)));
        assert!(!p.is_moving_at(SimTime::from_secs(15)));
    }

    #[test]
    fn queries_past_end_hold_last_segment() {
        let p = MotionProfile::stationary(SimDuration::from_secs(1));
        assert!(!p.is_moving_at(SimTime::from_secs(100)));
        let w = MotionProfile::walking(SimDuration::from_secs(1), 1.4, 90.0);
        assert!(w.is_moving_at(SimTime::from_secs(100)));
        assert_eq!(w.heading_at(SimTime::from_secs(100)), 90.0);
    }

    #[test]
    fn static_move_static_shape() {
        let p = MotionProfile::static_move_static(
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
        );
        assert!(!p.is_moving_at(SimTime::from_secs(2)));
        assert!(p.is_moving_at(SimTime::from_secs(10)));
        assert!(!p.is_moving_at(SimTime::from_secs(18)));
        assert_eq!(
            p.transition_times(),
            vec![SimTime::from_secs(5), SimTime::from_secs(15)]
        );
    }

    #[test]
    fn speeds_and_states() {
        assert_eq!(MotionState::Static.speed_mps(), 0.0);
        assert!(!MotionState::Static.is_moving());
        let v = MotionState::Vehicle { speed_mps: 20.0 };
        assert!(v.is_moving());
        assert_eq!(v.speed_mps(), 20.0);
    }

    #[test]
    fn alternating_profile_alternates() {
        let p = MotionProfile::alternating(SimDuration::from_secs(5), 3);
        assert_eq!(p.segments().len(), 6);
        assert_eq!(p.duration(), SimDuration::from_secs(30));
        assert_eq!(p.transition_times().len(), 5);
        assert!(!p.is_moving_at(SimTime::from_secs(2)));
        assert!(p.is_moving_at(SimTime::from_secs(7)));
    }

    #[test]
    #[should_panic]
    fn empty_profile_rejected() {
        let _ = MotionProfile::new(vec![]);
    }

    #[test]
    fn boundary_belongs_to_next_segment() {
        let p = MotionProfile::half_and_half(SimDuration::from_secs(10), true);
        // Exactly at t=10s the walking segment has begun.
        assert!(p.is_moving_at(SimTime::from_secs(10)));
    }
}
