//! The jerk-based movement detector of Sec. 2.2.1, implemented verbatim.
//!
//! For each 2 ms force report `t`, the detector computes the average force
//! vector over the five most recent reports and over the five before those,
//! and defines the **jerk**
//!
//! ```text
//! J_t = (x̄ − x̄′)² + (ȳ − ȳ′)² + (z̄ − z̄′)²
//! ```
//!
//! — "roughly, the recent change in force on the accelerometer". The
//! movement hint `H_t` then follows the paper's four-case rule with
//! threshold 3 and a 50-report (100 ms) hysteresis window:
//!
//! * `H_{t−1} = 0` and `J_t > 3`  ⇒ `H_t = 1` (instant rising edge)
//! * `H_{t−1} = 1` and some `J` in the last 50 reports `> 3` ⇒ `H_t = 1`
//! * `H_{t−1} = 1` and all `J` in the last 50 reports `≤ 3` ⇒ `H_t = 0`
//! * `H_{t−1} = 0` and `J_t ≤ 3` ⇒ `H_t = 0`
//!
//! `H_0 = 0`. Because the raw units are never calibrated, the same constants
//! work across devices (the paper's point); our synthetic sensor honours the
//! same unit conventions.

use crate::accelerometer::ForceReport;
use hint_sim::SimTime;

/// The paper's empirically determined jerk threshold.
pub const JERK_THRESHOLD: f64 = 3.0;

/// Number of reports in each averaging half-window.
pub const AVG_WINDOW: usize = 5;

/// Hysteresis window in reports (50 reports × 2 ms = 100 ms).
pub const HYSTERESIS_REPORTS: usize = 50;

/// Output of feeding one report into the detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JerkSample {
    /// Report timestamp.
    pub t: SimTime,
    /// The jerk value `J_t` (zero until ten reports have been seen).
    pub jerk: f64,
    /// The movement hint `H_t` after this report.
    pub moving: bool,
}

/// Streaming implementation of the Sec. 2.2.1 movement-hint algorithm.
///
/// ```
/// use hint_sensors::{Accelerometer, MovementDetector, MotionProfile};
/// use hint_sim::{RngStream, SimDuration, SimTime};
///
/// let profile = MotionProfile::static_move_static(
///     SimDuration::from_secs(2), SimDuration::from_secs(2), SimDuration::from_secs(2));
/// let mut accel = Accelerometer::new(profile, RngStream::new(1).derive("accel"));
/// let mut det = MovementDetector::new();
/// let mut hint_at_5s = false;
/// while accel.profile().duration() > (SimDuration::from_secs(0)) {
///     let r = accel.next_report();
///     let s = det.push(&r);
///     if r.t >= SimTime::from_secs(5) { hint_at_5s = s.moving; break; }
/// }
/// assert!(!hint_at_5s); // static again by t = 5 s
/// ```
#[derive(Clone, Debug, Default)]
pub struct MovementDetector {
    /// Ring buffer of the last `2 × AVG_WINDOW` reports' force vectors.
    window: Vec<[f64; 3]>,
    /// Current hint value `H_t`.
    moving: bool,
    /// Reports elapsed since a jerk value last exceeded the threshold.
    reports_since_jerk: usize,
    /// Total reports consumed.
    count: u64,
}

impl MovementDetector {
    /// Fresh detector with `H_0 = 0`.
    pub fn new() -> Self {
        MovementDetector {
            window: Vec::with_capacity(2 * AVG_WINDOW),
            moving: false,
            reports_since_jerk: HYSTERESIS_REPORTS + 1,
            count: 0,
        }
    }

    /// Current movement hint — "the most recently calculated hint value"
    /// returned by the paper's hint service when queried.
    pub fn is_moving(&self) -> bool {
        self.moving
    }

    /// Number of reports consumed so far.
    pub fn reports_seen(&self) -> u64 {
        self.count
    }

    /// Feed one force report; returns the jerk and updated hint.
    pub fn push(&mut self, report: &ForceReport) -> JerkSample {
        self.count += 1;
        if self.window.len() == 2 * AVG_WINDOW {
            self.window.remove(0);
        }
        self.window.push([report.x, report.y, report.z]);

        let jerk = if self.window.len() == 2 * AVG_WINDOW {
            // Older half: indices 0..5; recent half: indices 5..10.
            let avg = |range: std::ops::Range<usize>| {
                let mut s = [0.0f64; 3];
                for i in range.clone() {
                    for (a, acc) in s.iter_mut().enumerate() {
                        *acc += self.window[i][a];
                    }
                }
                let n = range.len() as f64;
                [s[0] / n, s[1] / n, s[2] / n]
            };
            let old = avg(0..AVG_WINDOW);
            let new = avg(AVG_WINDOW..2 * AVG_WINDOW);
            (new[0] - old[0]).powi(2) + (new[1] - old[1]).powi(2) + (new[2] - old[2]).powi(2)
        } else {
            0.0
        };

        if jerk > JERK_THRESHOLD {
            self.reports_since_jerk = 0;
        } else {
            self.reports_since_jerk = self.reports_since_jerk.saturating_add(1);
        }

        // The four-case update from Sec. 2.2.1.
        self.moving = if self.moving {
            // Stay moving while any of the last 50 jerks exceeded the
            // threshold; clear once the whole window is quiet.
            self.reports_since_jerk <= HYSTERESIS_REPORTS
        } else {
            jerk > JERK_THRESHOLD
        };

        JerkSample {
            t: report.t,
            jerk,
            moving: self.moving,
        }
    }

    /// Convenience: run the detector over a whole report slice, returning
    /// the per-report samples (used to regenerate Fig. 2-2).
    pub fn run(reports: &[ForceReport]) -> Vec<JerkSample> {
        let mut det = MovementDetector::new();
        reports.iter().map(|r| det.push(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerometer::{Accelerometer, ACCEL_REPORT_PERIOD};
    use crate::motion::MotionProfile;
    use hint_sim::{RngStream, SimDuration};

    fn report(t_idx: u64, x: f64, y: f64, z: f64) -> ForceReport {
        ForceReport {
            t: SimTime::ZERO + ACCEL_REPORT_PERIOD * t_idx,
            x,
            y,
            z,
        }
    }

    #[test]
    fn quiet_input_never_triggers() {
        let mut det = MovementDetector::new();
        for i in 0..1000 {
            let s = det.push(&report(i, 0.0, 0.0, 9.3));
            assert!(!s.moving);
            assert!(s.jerk.is_finite() && s.jerk >= 0.0);
            assert!(s.jerk < JERK_THRESHOLD);
        }
    }

    #[test]
    fn step_change_triggers_immediately() {
        let mut det = MovementDetector::new();
        // 10 quiet reports to fill the window.
        for i in 0..10 {
            det.push(&report(i, 0.0, 0.0, 9.3));
        }
        assert!(!det.is_moving());
        // A 3-unit jump on z: averages differ by ~3 within a few reports,
        // J ≈ 9 > 3.
        let mut fired_at = None;
        for i in 10..20 {
            let s = det.push(&report(i, 0.0, 0.0, 12.3));
            if s.moving && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        let fired = fired_at.expect("detector should fire");
        assert!(
            fired <= 14,
            "fired at report {fired}, want within 5 reports"
        );
    }

    #[test]
    fn hint_clears_after_hysteresis_window() {
        let mut det = MovementDetector::new();
        for i in 0..10 {
            det.push(&report(i, 0.0, 0.0, 9.3));
        }
        // One violent report burst.
        for i in 10..15 {
            det.push(&report(i, 5.0, 5.0, 15.0));
        }
        assert!(det.is_moving());
        // Quiet again: hint must persist for ~50 reports then clear.
        let mut cleared_at = None;
        for i in 15..200 {
            let s = det.push(&report(i, 0.0, 0.0, 9.3));
            if !s.moving {
                cleared_at = Some(i);
                break;
            }
        }
        let cleared = cleared_at.expect("hint should eventually clear");
        // The burst's influence on the averaging window lasts ~10 reports
        // past report 14, and the hysteresis a further 50.
        assert!(
            (60..=90).contains(&(cleared - 14)),
            "cleared {} reports after burst end",
            cleared - 14
        );
    }

    #[test]
    fn jerk_is_zero_until_window_full() {
        let mut det = MovementDetector::new();
        for i in 0..9 {
            let s = det.push(&report(i, 100.0 * i as f64, 0.0, 0.0));
            assert_eq!(s.jerk, 0.0, "report {i} should have no jerk yet");
        }
    }

    #[test]
    fn detects_synthetic_walk_with_low_latency() {
        // End-to-end: synthetic accelerometer + detector reproduce the
        // paper's "<100 ms detection" claim on a static→walk transition.
        let profile = MotionProfile::static_move_static(
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        );
        let mut accel = Accelerometer::new(profile, RngStream::new(99).derive("walk"));
        let reports = accel.reports_until(SimTime::from_secs(15));
        let samples = MovementDetector::run(&reports);

        // No false positive during the first static phase (allow the first
        // 100 ms of warm-up).
        for s in &samples {
            if s.t > SimTime::from_millis(100) && s.t < SimTime::from_secs(5) {
                assert!(!s.moving, "false positive at {:?}", s.t);
            }
        }
        // Rising edge within 300 ms of movement onset (walking ramps in with
        // the step cycle, so allow a touch more than the paper's 100 ms).
        let rise = samples
            .iter()
            .find(|s| s.t >= SimTime::from_secs(5) && s.moving)
            .expect("movement detected");
        let latency_ms = rise.t.as_millis() as i64 - 5000;
        assert!(
            (0..=300).contains(&latency_ms),
            "rising-edge latency {latency_ms} ms"
        );
        // Falling edge within 500 ms of movement end.
        let fall = samples
            .iter()
            .find(|s| s.t >= SimTime::from_secs(10) && !s.moving)
            .expect("stop detected");
        let latency_ms = fall.t.as_millis() as i64 - 10_000;
        assert!(
            (0..=500).contains(&latency_ms),
            "falling-edge latency {latency_ms} ms"
        );
        // Hint held through the moving phase (after onset).
        let held = samples
            .iter()
            .filter(|s| s.t > SimTime::from_millis(5500) && s.t < SimTime::from_millis(9500))
            .filter(|s| s.moving)
            .count();
        let total = samples
            .iter()
            .filter(|s| s.t > SimTime::from_millis(5500) && s.t < SimTime::from_millis(9500))
            .count();
        assert!(
            held as f64 / total as f64 > 0.95,
            "hint held {}/{} of moving phase",
            held,
            total
        );
    }

    #[test]
    fn static_jerk_values_stay_below_threshold_with_margin() {
        let profile = MotionProfile::stationary(SimDuration::from_secs(10));
        let mut accel = Accelerometer::new(profile, RngStream::new(5).derive("static"));
        let reports = accel.reports_until(SimTime::from_secs(10));
        let samples = MovementDetector::run(&reports);
        let max_jerk = samples.iter().map(|s| s.jerk).fold(0.0, f64::max);
        assert!(
            max_jerk < JERK_THRESHOLD,
            "static max jerk {max_jerk} exceeds threshold"
        );
    }
}
