//! Compass + gyroscope heading fusion (Sec. 2.2.2).
//!
//! "In such scenarios, we propose to use the gyroscope in conjunction with
//! the compass to produce accurate headings." The standard tool is a
//! complementary filter: integrate the gyro for short-term shape (immune to
//! magnetic disturbance) and pull slowly toward the compass for long-term
//! absolute reference (immune to gyro drift).

use crate::compass::{heading_difference, CompassReading};
use crate::gyro::GyroReading;
use hint_sim::SimTime;

/// Complementary-filter heading estimator.
///
/// * On each gyro reading, the estimate advances by `rate × Δt`.
/// * On each compass reading, the estimate is pulled a fraction
///   `compass_gain` of the way toward the compass heading (shortest path).
///
/// A small gain (default 0.05) trusts the gyro over seconds and the compass
/// over tens of seconds, which suppresses the large transient compass
/// errors of noisy indoor environments while bounding gyro drift.
#[derive(Clone, Debug)]
pub struct HeadingEstimator {
    heading_deg: Option<f64>,
    last_gyro_t: Option<SimTime>,
    /// Per-compass-reading correction gain in `(0, 1]`.
    pub compass_gain: f64,
}

impl Default for HeadingEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl HeadingEstimator {
    /// Estimator with the default compass gain (0.05).
    pub fn new() -> Self {
        HeadingEstimator {
            heading_deg: None,
            last_gyro_t: None,
            compass_gain: 0.05,
        }
    }

    /// Estimator with an explicit compass gain.
    ///
    /// # Panics
    /// Panics unless `gain ∈ (0, 1]`.
    pub fn with_gain(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain {gain} out of (0,1]");
        HeadingEstimator {
            heading_deg: None,
            last_gyro_t: None,
            compass_gain: gain,
        }
    }

    /// Current fused heading in degrees `[0, 360)`, if initialised.
    pub fn heading_deg(&self) -> Option<f64> {
        self.heading_deg
    }

    /// Fold in a gyroscope reading (advances the estimate by integration).
    pub fn update_gyro(&mut self, r: &GyroReading) {
        if let (Some(h), Some(last_t)) = (self.heading_deg, self.last_gyro_t) {
            let dt = r.t.saturating_since(last_t).as_secs_f64();
            self.heading_deg = Some((h + r.rate_dps * dt).rem_euclid(360.0));
        }
        self.last_gyro_t = Some(r.t);
    }

    /// Fold in a compass reading (initialises, then gently corrects).
    pub fn update_compass(&mut self, r: &CompassReading) {
        match self.heading_deg {
            None => self.heading_deg = Some(r.heading_deg.rem_euclid(360.0)),
            Some(h) => {
                // Shortest-path error, then a proportional pull.
                let mut err = (r.heading_deg - h).rem_euclid(360.0);
                if err > 180.0 {
                    err -= 360.0;
                }
                self.heading_deg = Some((h + self.compass_gain * err).rem_euclid(360.0));
            }
        }
    }

    /// Absolute error versus a reference heading, degrees `[0, 180]`.
    pub fn error_vs(&self, true_heading_deg: f64) -> Option<f64> {
        self.heading_deg
            .map(|h| heading_difference(h, true_heading_deg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compass::{Compass, MagneticEnvironment};
    use crate::gyro::Gyro;
    use crate::motion::MotionProfile;
    use hint_sim::{RngStream, SimDuration};

    #[test]
    fn initialises_from_first_compass_reading() {
        let mut est = HeadingEstimator::new();
        assert_eq!(est.heading_deg(), None);
        est.update_compass(&CompassReading {
            t: SimTime::ZERO,
            heading_deg: 123.0,
        });
        assert_eq!(est.heading_deg(), Some(123.0));
    }

    #[test]
    fn gyro_integration_advances_heading() {
        let mut est = HeadingEstimator::new();
        est.update_compass(&CompassReading {
            t: SimTime::ZERO,
            heading_deg: 0.0,
        });
        est.update_gyro(&GyroReading {
            t: SimTime::ZERO,
            rate_dps: 0.0,
        });
        // 10°/s for 2 s ⇒ 20°.
        est.update_gyro(&GyroReading {
            t: SimTime::from_secs(2),
            rate_dps: 10.0,
        });
        assert!((est.heading_deg().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn compass_pull_takes_shortest_path_across_wrap() {
        let mut est = HeadingEstimator::with_gain(0.5);
        est.update_compass(&CompassReading {
            t: SimTime::ZERO,
            heading_deg: 350.0,
        });
        est.update_compass(&CompassReading {
            t: SimTime::from_secs(1),
            heading_deg: 10.0,
        });
        // 350 pulled halfway toward 10 across the wrap ⇒ 0, not 180.
        let h = est.heading_deg().unwrap();
        assert!(!(1.0..=359.0).contains(&h), "heading {h}");
    }

    #[test]
    fn fusion_beats_raw_compass_in_noisy_environment() {
        // Device walks a constant 200° heading in a magnetically hostile
        // environment. Fused error should be well below raw compass error.
        let profile = MotionProfile::walking(SimDuration::from_secs(300), 1.4, 200.0);
        let root = RngStream::new(2024);
        let mut compass = Compass::new(
            profile.clone(),
            MagneticEnvironment::IndoorNoisy,
            root.derive("compass"),
        );
        let mut gyro = Gyro::new(profile, root.derive("gyro"));
        let mut est = HeadingEstimator::new();

        let mut raw_errs = Vec::new();
        let mut fused_errs = Vec::new();
        // Gyro at 50 Hz, compass at 1 Hz, over 300 s; score after a 30 s
        // settle period.
        for tick in 0..15_000u64 {
            let t = SimTime::from_millis(tick * 20);
            est.update_gyro(&gyro.read_at(t));
            if tick % 50 == 0 {
                let c = compass.read_at(t);
                est.update_compass(&c);
                if t > SimTime::from_secs(30) {
                    raw_errs.push(heading_difference(c.heading_deg, 200.0));
                    fused_errs.push(est.error_vs(200.0).unwrap());
                }
            }
        }
        let raw = raw_errs.iter().sum::<f64>() / raw_errs.len() as f64;
        let fused = fused_errs.iter().sum::<f64>() / fused_errs.len() as f64;
        assert!(
            fused < raw * 0.8,
            "fused {fused:.1}° should beat raw {raw:.1}° by >20%"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_gain_rejected() {
        let _ = HeadingEstimator::with_gain(0.0);
    }
}
