//! Gyroscope model (Sec. 2.2.2).
//!
//! Gyros report angular rate about the vertical axis. Integrating the rate
//! tracks heading changes accurately over short horizons but drifts without
//! bound (bias instability), which is why the paper pairs the gyro with the
//! compass rather than using it alone.

use crate::motion::MotionProfile;
use hint_sim::{RngStream, SimDuration, SimTime};

/// One gyroscope reading.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GyroReading {
    /// Reading timestamp.
    pub t: SimTime,
    /// Angular rate about the vertical axis, degrees/second
    /// (positive = clockwise, matching compass convention).
    pub rate_dps: f64,
}

/// Synthetic z-axis gyroscope bound to a motion profile.
///
/// The true angular rate is the derivative of the profile's heading
/// (impulsive at segment boundaries, smoothed over the sample interval),
/// plus white noise and a slowly wandering bias.
#[derive(Clone, Debug)]
pub struct Gyro {
    profile: MotionProfile,
    rng: RngStream,
    /// White-noise std-dev, degrees/second.
    pub noise_dps: f64,
    /// Bias random-walk step per reading, degrees/second.
    pub bias_step_dps: f64,
    /// Sampling interval.
    pub sample_interval: SimDuration,
    bias: f64,
    last_t: SimTime,
    last_heading: f64,
}

impl Gyro {
    /// Create a gyro with typical MEMS noise characteristics.
    pub fn new(profile: MotionProfile, rng: RngStream) -> Self {
        let h0 = profile.heading_at(SimTime::ZERO);
        Gyro {
            profile,
            rng,
            noise_dps: 0.5,
            bias_step_dps: 0.002,
            sample_interval: SimDuration::from_millis(20),
            bias: 0.0,
            last_t: SimTime::ZERO,
            last_heading: h0,
        }
    }

    /// Take a reading at `t` (must be ≥ the previous reading's time).
    pub fn read_at(&mut self, t: SimTime) -> GyroReading {
        let dt = t.saturating_since(self.last_t).as_secs_f64().max(1e-6);
        let heading = self.profile.heading_at(t);
        // Shortest-path angular change.
        let mut dh = (heading - self.last_heading).rem_euclid(360.0);
        if dh > 180.0 {
            dh -= 360.0;
        }
        let true_rate = dh / dt;
        self.last_t = t;
        self.last_heading = heading;

        self.bias += self.rng.normal() * self.bias_step_dps;
        GyroReading {
            t,
            rate_dps: true_rate + self.bias + self.rng.normal() * self.noise_dps,
        }
    }

    /// Current accumulated bias (test aid).
    pub fn bias_dps(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::{MotionSegment, MotionState};

    fn rng() -> RngStream {
        RngStream::new(41).derive("gyro")
    }

    #[test]
    fn constant_heading_reads_near_zero_rate() {
        let p = MotionProfile::walking(SimDuration::from_secs(10), 1.4, 90.0);
        let mut g = Gyro::new(p, rng());
        let mut rates = Vec::new();
        for i in 1..100 {
            rates.push(g.read_at(SimTime::from_millis(i * 100)).rate_dps);
        }
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(mean.abs() < 1.0, "mean rate {mean}");
    }

    #[test]
    fn heading_change_produces_rate_spike() {
        let p = MotionProfile::new(vec![
            MotionSegment {
                state: MotionState::Walking { speed_mps: 1.4 },
                duration: SimDuration::from_secs(5),
                heading_deg: 0.0,
            },
            MotionSegment {
                state: MotionState::Walking { speed_mps: 1.4 },
                duration: SimDuration::from_secs(5),
                heading_deg: 90.0,
            },
        ]);
        let mut g = Gyro::new(p, rng());
        let mut max_rate: f64 = 0.0;
        for i in 1..100 {
            let r = g.read_at(SimTime::from_millis(i * 100));
            max_rate = max_rate.max(r.rate_dps.abs());
        }
        // 90° over one 100 ms sample ⇒ ~900°/s spike.
        assert!(max_rate > 100.0, "max rate {max_rate}");
    }

    #[test]
    fn bias_wanders_over_time() {
        let p = MotionProfile::stationary(SimDuration::from_secs(1000));
        let mut g = Gyro::new(p, rng());
        for i in 1..5000 {
            g.read_at(SimTime::from_millis(i * 20));
        }
        assert!(g.bias_dps().abs() > 0.0, "bias should have wandered");
    }

    #[test]
    fn wraparound_rate_takes_shortest_path() {
        // 350° → 10° should read as +20°, not −340°.
        let p = MotionProfile::new(vec![
            MotionSegment {
                state: MotionState::Walking { speed_mps: 1.4 },
                duration: SimDuration::from_secs(1),
                heading_deg: 350.0,
            },
            MotionSegment {
                state: MotionState::Walking { speed_mps: 1.4 },
                duration: SimDuration::from_secs(1),
                heading_deg: 10.0,
            },
        ]);
        let mut g = Gyro::new(p, rng());
        g.read_at(SimTime::from_millis(900));
        let r = g.read_at(SimTime::from_millis(1100));
        // +20° over 0.2 s ⇒ ~+100°/s.
        assert!(
            r.rate_dps > 50.0 && r.rate_dps < 150.0,
            "rate {}",
            r.rate_dps
        );
    }
}
