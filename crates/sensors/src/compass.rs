//! Digital compass (magnetometer) model (Sec. 2.2.2).
//!
//! Compasses report heading relative to magnetic north. The paper notes
//! their accuracy "depends on the magnetic influence in the environment and
//! can become extremely noisy in some indoor environments" — modelled here
//! as an environment-dependent noise level plus occasional slowly varying
//! magnetic disturbance (ferrous structure, wiring) that biases readings.

use crate::motion::MotionProfile;
use hint_sim::{RngStream, SimTime};

/// Magnetic environment classes with representative noise behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MagneticEnvironment {
    /// Open outdoor air: small white noise only.
    CleanOutdoor,
    /// Typical office: moderate noise plus mild wandering bias.
    Indoor,
    /// Near elevators / machine rooms: heavy noise and large bias swings —
    /// the case where Sec. 2.2.2 recommends gyro fusion.
    IndoorNoisy,
}

impl MagneticEnvironment {
    /// White-noise std-dev in degrees.
    fn noise_deg(self) -> f64 {
        match self {
            MagneticEnvironment::CleanOutdoor => 2.0,
            MagneticEnvironment::Indoor => 8.0,
            MagneticEnvironment::IndoorNoisy => 30.0,
        }
    }

    /// Random-walk step of the disturbance bias, degrees per reading.
    fn bias_step_deg(self) -> f64 {
        match self {
            MagneticEnvironment::CleanOutdoor => 0.0,
            MagneticEnvironment::Indoor => 0.3,
            MagneticEnvironment::IndoorNoisy => 1.0,
        }
    }

    /// Maximum magnitude the wandering bias can reach, degrees.
    fn bias_cap_deg(self) -> f64 {
        match self {
            MagneticEnvironment::CleanOutdoor => 0.0,
            MagneticEnvironment::Indoor => 8.0,
            MagneticEnvironment::IndoorNoisy => 15.0,
        }
    }
}

/// One compass reading.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompassReading {
    /// Reading timestamp.
    pub t: SimTime,
    /// Heading in degrees `[0, 360)` clockwise from magnetic north.
    pub heading_deg: f64,
}

/// Synthetic compass bound to a ground-truth motion profile.
#[derive(Clone, Debug)]
pub struct Compass {
    profile: MotionProfile,
    env: MagneticEnvironment,
    rng: RngStream,
    bias: f64,
}

impl Compass {
    /// Create a compass in the given magnetic environment.
    pub fn new(profile: MotionProfile, env: MagneticEnvironment, rng: RngStream) -> Self {
        Compass {
            profile,
            env,
            rng,
            bias: 0.0,
        }
    }

    /// The environment this compass operates in.
    pub fn environment(&self) -> MagneticEnvironment {
        self.env
    }

    /// Take a reading at time `t`.
    pub fn read_at(&mut self, t: SimTime) -> CompassReading {
        let step = self.env.bias_step_deg();
        if step > 0.0 {
            self.bias += self.rng.normal() * step;
            let cap = self.env.bias_cap_deg();
            self.bias = self.bias.clamp(-cap, cap);
        }
        let true_heading = self.profile.heading_at(t);
        let noisy =
            (true_heading + self.bias + self.rng.normal() * self.env.noise_deg()).rem_euclid(360.0);
        CompassReading {
            t,
            heading_deg: noisy,
        }
    }
}

/// Smallest absolute angular difference between two headings, degrees
/// `[0, 180]`. Used throughout the vehicular CTE metric (Sec. 5.1.1).
pub fn heading_difference(a_deg: f64, b_deg: f64) -> f64 {
    let d = (a_deg - b_deg).rem_euclid(360.0);
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_sim::SimDuration;

    fn rng() -> RngStream {
        RngStream::new(31).derive("compass")
    }

    #[test]
    fn outdoor_readings_are_tight() {
        let p = MotionProfile::vehicle(SimDuration::from_secs(100), 10.0, 120.0);
        let mut c = Compass::new(p, MagneticEnvironment::CleanOutdoor, rng());
        let mut errs = Vec::new();
        for s in 0..100 {
            let r = c.read_at(SimTime::from_secs(s));
            errs.push(heading_difference(r.heading_deg, 120.0));
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 4.0, "mean outdoor error {mean_err}");
    }

    #[test]
    fn noisy_indoor_readings_are_much_worse() {
        let p = MotionProfile::walking(SimDuration::from_secs(100), 1.4, 200.0);
        let mut c = Compass::new(p, MagneticEnvironment::IndoorNoisy, rng());
        let mut errs = Vec::new();
        for s in 0..100 {
            let r = c.read_at(SimTime::from_secs(s));
            errs.push(heading_difference(r.heading_deg, 200.0));
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err > 10.0, "mean noisy-indoor error {mean_err}");
    }

    #[test]
    fn readings_stay_in_range() {
        let p = MotionProfile::walking(SimDuration::from_secs(50), 1.4, 350.0);
        let mut c = Compass::new(p, MagneticEnvironment::IndoorNoisy, rng());
        for s in 0..50 {
            let r = c.read_at(SimTime::from_secs(s));
            assert!((0.0..360.0).contains(&r.heading_deg));
        }
    }

    #[test]
    fn heading_difference_properties() {
        assert_eq!(heading_difference(0.0, 0.0), 0.0);
        assert_eq!(heading_difference(0.0, 180.0), 180.0);
        assert!((heading_difference(350.0, 10.0) - 20.0).abs() < 1e-12);
        assert!((heading_difference(10.0, 350.0) - 20.0).abs() < 1e-12);
        assert!((heading_difference(90.0, 270.0) - 180.0).abs() < 1e-12);
        // Symmetry.
        for (a, b) in [(15.0, 200.0), (359.0, 1.0), (123.4, 321.0)] {
            assert_eq!(heading_difference(a, b), heading_difference(b, a));
        }
    }
}
