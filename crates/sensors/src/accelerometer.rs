//! Synthetic 3-axis accelerometer.
//!
//! The paper's receiver carried a Sparkfun serial accelerometer reporting
//! force on three axes once every 2 ms, in *custom units* (Sec. 2.2.1 notes
//! the hint algorithm deliberately never converts or calibrates them). This
//! model reproduces the statistical structure the jerk detector depends on:
//!
//! * **Static**: a constant gravity-plus-orientation offset per axis with
//!   small white sensor noise. Adjacent 5-report averages barely differ, so
//!   jerk stays well under the threshold of 3.
//! * **Moving**: the same baseline plus low-frequency force swings — step
//!   impacts while walking (~2 Hz), engine/road vibration and speed changes
//!   in a vehicle — that shift the 5-report average between windows and
//!   drive jerk far above 3, exactly as in Fig. 2-2.
//!
//! Calibration note (documented substitution): amplitudes below were chosen
//! so that static jerk < 3 with ≥5× margin and moving jerk exceeds 3 many
//! times per second, matching the qualitative plot in Fig. 2-2. The detector
//! constants themselves are the paper's, untouched.

use crate::motion::{MotionProfile, MotionState};
use hint_sim::{RngStream, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The paper's accelerometer report period: one report every 2 ms.
pub const ACCEL_REPORT_PERIOD: SimDuration = SimDuration::from_micros(2_000);

/// One force report `(x, y, z)` in the sensor's custom units.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForceReport {
    /// Report timestamp.
    pub t: SimTime,
    /// Force along the x axis (custom units).
    pub x: f64,
    /// Force along the y axis (custom units).
    pub y: f64,
    /// Force along the z axis (custom units).
    pub z: f64,
}

/// Tunable noise/vibration amplitudes for the synthetic sensor.
#[derive(Clone, Copy, Debug)]
pub struct AccelConfig {
    /// Std-dev of per-axis white sensor noise (custom units).
    pub noise_sd: f64,
    /// Peak amplitude of walking step impacts (custom units).
    pub walk_amplitude: f64,
    /// Step cadence while walking, in Hz.
    pub walk_cadence_hz: f64,
    /// Amplitude of vehicle road/engine vibration (custom units).
    pub vehicle_amplitude: f64,
    /// Gravity-plus-orientation baseline per axis (custom units).
    pub baseline: [f64; 3],
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            noise_sd: 0.25,
            walk_amplitude: 4.0,
            walk_cadence_hz: 2.0,
            vehicle_amplitude: 3.0,
            baseline: [0.0, 0.0, 9.3],
        }
    }
}

/// Synthetic accelerometer bound to a ground-truth motion profile.
///
/// Call [`Accelerometer::next_report`] repeatedly to stream 2 ms reports,
/// or [`Accelerometer::reports_until`] to materialise a whole trace.
#[derive(Clone, Debug)]
pub struct Accelerometer {
    profile: MotionProfile,
    cfg: AccelConfig,
    rng: RngStream,
    t: SimTime,
    /// Slowly wandering orientation component while moving (models the
    /// device tilting in a hand / on a seat).
    tilt: [f64; 3],
}

impl Accelerometer {
    /// Create a sensor observing `profile`, seeded deterministically.
    pub fn new(profile: MotionProfile, rng: RngStream) -> Self {
        Accelerometer {
            profile,
            cfg: AccelConfig::default(),
            rng,
            t: SimTime::ZERO,
            tilt: [0.0; 3],
        }
    }

    /// Create with explicit noise configuration.
    pub fn with_config(profile: MotionProfile, cfg: AccelConfig, rng: RngStream) -> Self {
        Accelerometer {
            profile,
            cfg,
            rng,
            t: SimTime::ZERO,
            tilt: [0.0; 3],
        }
    }

    /// The motion profile this sensor observes.
    pub fn profile(&self) -> &MotionProfile {
        &self.profile
    }

    /// Produce the next 2 ms force report.
    pub fn next_report(&mut self) -> ForceReport {
        let t = self.t;
        let state = self.profile.state_at(t);
        let secs = t.as_secs_f64();

        // Motion-induced force component per axis.
        let (ax, ay, az) = match state {
            MotionState::Static => (0.0, 0.0, 0.0),
            MotionState::Walking { speed_mps } => {
                // Step impacts: rectified sinusoid at the cadence plus
                // broadband hand/body shake. Real walking is impulsive —
                // heel strikes and hand tremor shift the short-window force
                // average between adjacent 10 ms windows, which is exactly
                // what the jerk detector keys on. Amplitude grows mildly
                // with speed.
                let scale = self.cfg.walk_amplitude * (speed_mps / 1.4).clamp(0.5, 2.0);
                let phase = std::f64::consts::TAU * self.cfg.walk_cadence_hz * secs;
                let step = phase.sin().abs() * scale;
                self.wander(0.15);
                let shake = scale * 0.6;
                (
                    step * 0.4 + self.rng.normal() * shake + self.tilt[0],
                    step * 0.3 + self.rng.normal() * shake + self.tilt[1],
                    step + self.rng.normal() * shake + self.tilt[2],
                )
            }
            MotionState::Vehicle { speed_mps } => {
                // Broadband vibration growing with speed, plus occasional
                // acceleration/braking swells via the tilt random walk.
                let scale = self.cfg.vehicle_amplitude * (speed_mps / 10.0).clamp(0.3, 2.5);
                self.wander(0.25);
                (
                    self.rng.normal() * scale * 0.5 + self.tilt[0],
                    self.rng.normal() * scale * 0.5 + self.tilt[1],
                    self.rng.normal() * scale + self.tilt[2],
                )
            }
        };

        // Tilt decays back to zero when static so the baseline is stable.
        if !state.is_moving() {
            for v in &mut self.tilt {
                *v *= 0.98;
            }
        }

        let n = self.cfg.noise_sd;
        let report = ForceReport {
            t,
            x: self.cfg.baseline[0] + ax + self.rng.normal() * n,
            y: self.cfg.baseline[1] + ay + self.rng.normal() * n,
            z: self.cfg.baseline[2] + az + self.rng.normal() * n,
        };
        self.t += ACCEL_REPORT_PERIOD;
        report
    }

    /// Random-walk the tilt vector with the given step size.
    fn wander(&mut self, step: f64) {
        for v in &mut self.tilt {
            *v += self.rng.normal() * step;
            *v = v.clamp(-3.0, 3.0);
        }
    }

    /// Materialise all reports from the current time until `end`.
    pub fn reports_until(&mut self, end: SimTime) -> Vec<ForceReport> {
        let mut out = Vec::new();
        while self.t < end {
            out.push(self.next_report());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_sim::SimDuration;

    fn rng() -> RngStream {
        RngStream::new(1234).derive("accel-test")
    }

    #[test]
    fn reports_are_2ms_apart() {
        let p = MotionProfile::stationary(SimDuration::from_secs(1));
        let mut a = Accelerometer::new(p, rng());
        let r0 = a.next_report();
        let r1 = a.next_report();
        assert_eq!((r1.t - r0.t).as_micros(), 2_000);
    }

    #[test]
    fn static_reports_hug_baseline() {
        let p = MotionProfile::stationary(SimDuration::from_secs(2));
        let mut a = Accelerometer::new(p, rng());
        let reports = a.reports_until(SimTime::from_secs(2));
        assert_eq!(reports.len(), 1000);
        let zs: Vec<f64> = reports.iter().map(|r| r.z).collect();
        let mean = zs.iter().sum::<f64>() / zs.len() as f64;
        assert!((mean - 9.3).abs() < 0.1, "mean z {mean}");
        let sd = (zs.iter().map(|z| (z - mean).powi(2)).sum::<f64>() / zs.len() as f64).sqrt();
        assert!(sd < 0.5, "static z sd {sd}");
    }

    #[test]
    fn walking_reports_swing_much_more() {
        let stat = MotionProfile::stationary(SimDuration::from_secs(2));
        let walk = MotionProfile::walking(SimDuration::from_secs(2), 1.4, 0.0);
        let var = |p: MotionProfile| {
            let mut a = Accelerometer::new(p, rng());
            let rs = a.reports_until(SimTime::from_secs(2));
            let zs: Vec<f64> = rs.iter().map(|r| r.z).collect();
            let m = zs.iter().sum::<f64>() / zs.len() as f64;
            zs.iter().map(|z| (z - m).powi(2)).sum::<f64>() / zs.len() as f64
        };
        let vs = var(stat);
        let vw = var(walk);
        assert!(vw > 10.0 * vs, "walking var {vw} vs static var {vs}");
    }

    #[test]
    fn vehicle_reports_are_noisy() {
        let p = MotionProfile::vehicle(SimDuration::from_secs(1), 15.0, 0.0);
        let mut a = Accelerometer::new(p, rng());
        let rs = a.reports_until(SimTime::from_secs(1));
        let zs: Vec<f64> = rs.iter().map(|r| r.z).collect();
        let m = zs.iter().sum::<f64>() / zs.len() as f64;
        let sd = (zs.iter().map(|z| (z - m).powi(2)).sum::<f64>() / zs.len() as f64).sqrt();
        assert!(sd > 1.0, "vehicle z sd {sd}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = MotionProfile::walking(SimDuration::from_secs(1), 1.4, 0.0);
        let mut a = Accelerometer::new(p.clone(), RngStream::new(7).derive("a"));
        let mut b = Accelerometer::new(p, RngStream::new(7).derive("a"));
        for _ in 0..500 {
            assert_eq!(a.next_report(), b.next_report());
        }
    }
}
