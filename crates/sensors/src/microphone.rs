//! Microphone-based environment-dynamism hint (Sec. 5.6).
//!
//! "A changing environment (e.g., caused by pedestrians or driving cars)
//! surrounding a static node can induce dynamic channel conditions similar
//! to what would be experienced if the node itself were moving. ... To
//! detect such conditions, a microphone can be used to measure noise
//! variation, which is likely to be highly correlated with nearby
//! activity."
//!
//! The model: ambient sound level (dBA) with a quiet floor plus activity
//! bursts whose intensity follows an environment-activity parameter; the
//! detector mirrors the jerk detector's structure — windowed variance
//! against a threshold with hysteresis — and raises a *dynamism hint* that
//! a rate-adaptation protocol can treat like a movement hint for the
//! channel (the paper: "in our experiments in such environments,
//! RapidSample performed better than SampleRate").

use hint_sim::{RngStream, SimDuration, SimTime};

/// Microphone sampling period (ambient level estimates at 10 Hz).
pub const MIC_SAMPLE_PERIOD: SimDuration = SimDuration::from_millis(100);

/// One ambient-level sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoundLevel {
    /// Sample timestamp.
    pub t: SimTime,
    /// A-weighted ambient level, dBA.
    pub dba: f64,
}

/// How busy the surroundings are.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityProfile {
    /// Quiet-floor level, dBA (an empty office ≈ 35).
    pub floor_dba: f64,
    /// Mean bursts per second (passing people/cars).
    pub burst_rate_hz: f64,
    /// Mean burst loudness above the floor, dB.
    pub burst_gain_db: f64,
}

impl ActivityProfile {
    /// A quiet, static environment (late-night office).
    pub fn quiet() -> Self {
        ActivityProfile {
            floor_dba: 35.0,
            burst_rate_hz: 0.02,
            burst_gain_db: 8.0,
        }
    }

    /// A lightly crowded pavement (the paper's outdoor setting).
    pub fn busy() -> Self {
        ActivityProfile {
            floor_dba: 45.0,
            burst_rate_hz: 0.8,
            burst_gain_db: 18.0,
        }
    }
}

/// Synthetic microphone producing 10 Hz ambient-level samples.
#[derive(Clone, Debug)]
pub struct Microphone {
    profile: ActivityProfile,
    rng: RngStream,
    t: SimTime,
    /// Remaining decay of the current burst, dB.
    burst_db: f64,
}

impl Microphone {
    /// Create a microphone in the given activity environment.
    pub fn new(profile: ActivityProfile, rng: RngStream) -> Self {
        Microphone {
            profile,
            rng,
            t: SimTime::ZERO,
            burst_db: 0.0,
        }
    }

    /// Produce the next 100 ms sample.
    pub fn next_sample(&mut self) -> SoundLevel {
        let t = self.t;
        // New bursts arrive as a Bernoulli thinning of the burst rate.
        let p_burst = self.profile.burst_rate_hz * MIC_SAMPLE_PERIOD.as_secs_f64();
        if self.rng.chance(p_burst) {
            self.burst_db = self.profile.burst_gain_db * (0.5 + self.rng.uniform());
        }
        let level = self.profile.floor_dba + self.burst_db + self.rng.normal() * 1.5;
        // Bursts decay over ~1 s.
        self.burst_db *= 0.9;
        self.t += MIC_SAMPLE_PERIOD;
        SoundLevel { t, dba: level }
    }
}

/// Windowed-variance dynamism detector over ambient-level samples.
///
/// Raises the hint when the standard deviation of the last `window`
/// samples exceeds `threshold_db`, and holds it for `hold` samples after
/// the variance subsides (hysteresis, like the jerk detector's 50-report
/// window).
#[derive(Clone, Debug)]
pub struct DynamismDetector {
    window: Vec<f64>,
    cap: usize,
    threshold_db: f64,
    hold: usize,
    since_active: usize,
    dynamic: bool,
}

impl Default for DynamismDetector {
    fn default() -> Self {
        Self::new(30, 4.0, 50)
    }
}

impl DynamismDetector {
    /// Detector over `window` samples with the given stddev threshold and
    /// hysteresis hold (in samples).
    pub fn new(window: usize, threshold_db: f64, hold: usize) -> Self {
        assert!(window >= 2, "variance needs >= 2 samples");
        DynamismDetector {
            window: Vec::with_capacity(window),
            cap: window,
            threshold_db,
            hold,
            since_active: usize::MAX,
            dynamic: false,
        }
    }

    /// Current dynamism hint.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// Feed one sample; returns the updated hint.
    pub fn push(&mut self, s: &SoundLevel) -> bool {
        if self.window.len() == self.cap {
            self.window.remove(0);
        }
        self.window.push(s.dba);
        let sd = if self.window.len() < 2 {
            0.0
        } else {
            let m = self.window.iter().sum::<f64>() / self.window.len() as f64;
            (self.window.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
                / (self.window.len() - 1) as f64)
                .sqrt()
        };
        if sd > self.threshold_db {
            self.since_active = 0;
        } else {
            self.since_active = self.since_active.saturating_add(1);
        }
        self.dynamic = self.since_active <= self.hold;
        self.dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_detector(profile: ActivityProfile, secs: u64, seed: u64) -> f64 {
        let mut mic = Microphone::new(profile, RngStream::new(seed).derive("mic"));
        let mut det = DynamismDetector::default();
        let n = secs * 10;
        let mut active = 0u64;
        for _ in 0..n {
            let s = mic.next_sample();
            if det.push(&s) {
                active += 1;
            }
        }
        active as f64 / n as f64
    }

    #[test]
    fn quiet_environment_rarely_triggers() {
        let frac = run_detector(ActivityProfile::quiet(), 600, 1);
        assert!(frac < 0.25, "quiet dynamism fraction {frac:.2}");
    }

    #[test]
    fn busy_environment_mostly_triggers() {
        let frac = run_detector(ActivityProfile::busy(), 600, 2);
        assert!(frac > 0.6, "busy dynamism fraction {frac:.2}");
    }

    #[test]
    fn busy_exceeds_quiet_across_seeds() {
        for seed in 10..15 {
            let q = run_detector(ActivityProfile::quiet(), 300, seed);
            let b = run_detector(ActivityProfile::busy(), 300, seed + 100);
            assert!(b > q + 0.3, "seed {seed}: busy {b:.2} vs quiet {q:.2}");
        }
    }

    #[test]
    fn hysteresis_holds_after_burst() {
        let mut det = DynamismDetector::new(10, 3.0, 20);
        let mk = |i: u64, dba: f64| SoundLevel {
            t: SimTime::from_millis(i * 100),
            dba,
        };
        // Quiet warm-up.
        for i in 0..20 {
            det.push(&mk(i, 40.0));
        }
        assert!(!det.is_dynamic());
        // One loud burst.
        for i in 20..25 {
            det.push(&mk(i, 60.0));
        }
        assert!(det.is_dynamic());
        // Back to quiet: hint held for the hold window, then cleared.
        let mut cleared_at = None;
        for i in 25..80 {
            if !det.push(&mk(i, 40.0)) {
                cleared_at = Some(i);
                break;
            }
        }
        let c = cleared_at.expect("eventually clears");
        assert!((40..=60).contains(&c), "cleared at sample {c}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_detector(ActivityProfile::busy(), 100, 7);
        let b = run_detector(ActivityProfile::busy(), 100, 7);
        assert_eq!(a, b);
    }
}
