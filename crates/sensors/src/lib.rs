//! # hint-sensors — sensor models and mobility-hint extraction
//!
//! Implements Chapter 2 of *Improving Wireless Network Performance Using
//! Sensor Hints*: the sensors found on commodity mobile devices and the
//! algorithms that turn their raw output into **mobility hints**.
//!
//! The paper's measurements used a Sparkfun serial accelerometer strapped to
//! a laptop; this crate substitutes a synthetic 3-axis force process
//! ([`accelerometer`]) driven by a ground-truth [`motion::MotionProfile`].
//! The *hint extraction* algorithms, however, are implemented exactly as the
//! paper specifies:
//!
//! * [`jerk::MovementDetector`] — Sec. 2.2.1's jerk detector: 2 ms force
//!   reports, two adjacent 5-report averages, squared-difference "jerk"
//!   value, threshold 3, 50-report hysteresis window. Detects transitions
//!   in under 100 ms of simulated time (Fig. 2-2).
//! * [`fusion::HeadingEstimator`] — Sec. 2.2.2: compass headings, optionally
//!   stabilised by gyroscope integration in magnetically noisy environments.
//! * [`gps`] — Sec. 2.2.3: outdoor position/speed/heading fixes (GPS locks
//!   only outdoors; indoor queries return `None`, which Sec. 5.3 exploits to
//!   detect outdoor operation).
//!
//! Downstream crates consume hints either directly (local protocols) or via
//! the over-the-air hint protocol in `hint-mac`.

pub mod accelerometer;
pub mod compass;
pub mod fusion;
pub mod gps;
pub mod gyro;
pub mod hints;
pub mod jerk;
pub mod microphone;
pub mod motion;
pub mod speed;
pub mod wifi_loc;

pub use accelerometer::{Accelerometer, ForceReport, ACCEL_REPORT_PERIOD};
pub use hints::{HeadingHint, MobilityHints, MovementHint, PositionHint, SpeedHint};
pub use jerk::{MovementDetector, JERK_THRESHOLD};
pub use motion::{MotionProfile, MotionSegment, MotionState};
