//! # hint-cc — closed-loop flow layer
//!
//! The repo's original traffic models are open-loop: `run_tcp` is a
//! window heuristic that never sees a queue, and the wireless hop is the
//! only place a packet can be delayed or lost. This crate supplies the
//! pieces of a *closed-loop* flow — the style of ns-2 and FlowForge's
//! `LossyWindowSender` — so the bottleneck can sit on the wired backhaul
//! behind the AP instead of on the air:
//!
//! * [`controller`] — the object-safe [`CongestionController`] trait plus
//!   the two baseline controllers: [`Reno`] (slow start + AIMD) and
//!   [`FixedWindow`] (a congestion-blind constant window).
//! * [`registry`] — [`CcaSpec`] names a controller in serialized specs;
//!   [`CcaRegistry`] maps names to factories, mirroring
//!   `hint_rateadapt::ProtocolRegistry` (case-insensitive lookup,
//!   canonical display names, actionable unknown-name errors).
//! * [`rtt`] — Jacobson/Karels RTT estimation ([`RttEstimator`]) in
//!   integer microseconds, feeding retransmission timeouts.
//! * [`backhaul`] — [`BackhaulSpec`] (rate / propagation delay / queue
//!   depth) and the deterministic FIFO [`DropTailQueue`] that models the
//!   AP's wired uplink.
//!
//! Everything here is pure integer-or-f64 arithmetic on
//! [`hint_sim::SimTime`]: no RNG, no wall clock, no I/O — the sender loop
//! in `hint_rateadapt::LinkSimulator::run` stays byte-identical at any
//! `--jobs` because this layer adds no draws of its own.

pub mod backhaul;
pub mod controller;
pub mod registry;
pub mod rtt;

pub use backhaul::{BackhaulSpec, DropTailQueue};
pub use controller::{CongestionController, FixedWindow, Reno};
pub use registry::{CcaRegistry, CcaSpec, UnknownCcaError};
pub use rtt::RttEstimator;
