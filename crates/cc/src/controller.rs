//! Pluggable congestion controllers.
//!
//! A controller owns one number — the congestion window, in packets —
//! and updates it from the three events a window-based sender can
//! observe: an acknowledged packet (with its measured RTT), a loss
//! inferred from later acks (fast-retransmit analog), and a
//! retransmission timeout. The trait is object-safe so the flow
//! simulator can hold `Box<dyn CongestionController>` built from a
//! [`crate::registry::CcaRegistry`] name, exactly as rate-adaptation
//! protocols are built from `ProtocolRegistry` names.

use hint_sim::{SimDuration, SimTime};

/// A window-based congestion-control algorithm.
///
/// The sender calls exactly one of the three event hooks per packet it
/// retires, then reads [`window`](CongestionController::window) to decide
/// how many packets may be in flight. Implementations must be
/// deterministic pure state machines: same event sequence ⇒ same windows.
pub trait CongestionController: Send {
    /// A packet was acknowledged; `rtt` is its measured round-trip time.
    fn on_ack(&mut self, now: SimTime, rtt: SimDuration);
    /// A packet was inferred lost from the arrival of a later ack
    /// (the fast-retransmit analog — the pipe is still moving).
    fn on_loss(&mut self, now: SimTime);
    /// A retransmission timer expired with no feedback at all (the pipe
    /// is presumed drained).
    fn on_timeout(&mut self, now: SimTime);
    /// Current congestion window, in packets. The sender floors this at
    /// one packet so a flow always probes.
    fn window(&self) -> f64;
    /// Canonical algorithm name (for tables and debugging).
    fn name(&self) -> &'static str;
}

/// Reno-style slow start + AIMD.
///
/// * Slow start: below `ssthresh`, each ack grows the window by one
///   packet (doubling per RTT).
/// * Congestion avoidance: at or above `ssthresh`, each ack grows it by
///   `1/cwnd` (one packet per RTT).
/// * Loss (fast-retransmit analog): `ssthresh = cwnd/2`, window restarts
///   from `ssthresh` (fast recovery's net effect).
/// * Timeout: `ssthresh = cwnd/2`, window collapses to one packet.
///
/// The window is capped at `cap` (the spec's `window` field), mirroring
/// the open-loop TCP model's `cwnd_cap`.
#[derive(Clone, Debug)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    cap: f64,
}

/// Reno's initial congestion window, packets (RFC 5681 would allow more;
/// the legacy `run_tcp` model also starts at 2).
const INITIAL_WINDOW: f64 = 2.0;
/// Floor for `ssthresh` after a loss event, packets.
const MIN_SSTHRESH: f64 = 2.0;

impl Reno {
    /// A fresh Reno controller with window cap `cap` (packets).
    pub fn new(cap: f64) -> Reno {
        Reno {
            cwnd: INITIAL_WINDOW.min(cap),
            ssthresh: cap,
            cap,
        }
    }

    /// Current slow-start threshold, packets (exposed for tests).
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

impl CongestionController for Reno {
    fn on_ack(&mut self, _now: SimTime, _rtt: SimDuration) {
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
        self.cwnd = self.cwnd.min(self.cap);
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = 1.0;
    }

    fn window(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "Reno"
    }
}

/// A congestion-blind fixed window: the baseline that shows what closing
/// the loop buys. It keeps `window` packets in flight no matter what the
/// path reports, so a backhaul bottleneck shows up as sustained queue
/// drops instead of a backed-off sender.
#[derive(Clone, Debug)]
pub struct FixedWindow {
    window: f64,
}

impl FixedWindow {
    /// A fixed window of `window` packets.
    pub fn new(window: f64) -> FixedWindow {
        FixedWindow { window }
    }
}

impl CongestionController for FixedWindow {
    fn on_ack(&mut self, _now: SimTime, _rtt: SimDuration) {}
    fn on_loss(&mut self, _now: SimTime) {}
    fn on_timeout(&mut self, _now: SimTime) {}

    fn window(&self) -> f64 {
        self.window
    }

    fn name(&self) -> &'static str {
        "FixedWindow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(c: &mut dyn CongestionController) {
        c.on_ack(SimTime::ZERO, SimDuration::from_millis(10));
    }

    #[test]
    fn reno_slow_starts_then_goes_linear() {
        let mut r = Reno::new(64.0);
        assert_eq!(r.window(), 2.0);
        // Slow start: +1 per ack until ssthresh.
        ack(&mut r);
        assert_eq!(r.window(), 3.0);
        // Drop ssthresh via a loss, then verify linear growth above it.
        r.on_loss(SimTime::ZERO);
        let w = r.window();
        assert!((w - 2.0).abs() < 1e-9 || w < 3.0);
        ack(&mut r);
        assert!(r.window() - w <= 1.0 / w + 1e-9, "growth must be <= 1/cwnd");
    }

    #[test]
    fn reno_loss_halves_and_timeout_collapses() {
        let mut r = Reno::new(64.0);
        for _ in 0..30 {
            ack(&mut r);
        }
        let before = r.window();
        r.on_loss(SimTime::ZERO);
        assert!((r.window() - before / 2.0).abs() < 1e-9);
        r.on_timeout(SimTime::ZERO);
        assert_eq!(r.window(), 1.0);
        // Recovery from timeout slow-starts toward the halved ssthresh.
        assert!(r.ssthresh() >= MIN_SSTHRESH);
    }

    #[test]
    fn reno_respects_cap() {
        let mut r = Reno::new(8.0);
        for _ in 0..100 {
            ack(&mut r);
        }
        assert!(r.window() <= 8.0);
    }

    #[test]
    fn fixed_window_ignores_everything() {
        let mut f = FixedWindow::new(16.0);
        ack(&mut f);
        f.on_loss(SimTime::ZERO);
        f.on_timeout(SimTime::ZERO);
        assert_eq!(f.window(), 16.0);
        assert_eq!(f.name(), "FixedWindow");
    }

    #[test]
    fn controllers_are_deterministic() {
        let mut a = Reno::new(64.0);
        let mut b = Reno::new(64.0);
        for i in 0..50 {
            if i % 7 == 3 {
                a.on_loss(SimTime::ZERO);
                b.on_loss(SimTime::ZERO);
            } else {
                ack(&mut a);
                ack(&mut b);
            }
            assert_eq!(a.window(), b.window());
        }
    }
}
