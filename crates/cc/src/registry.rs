//! Name → congestion-controller-factory registry.
//!
//! Serialized specs pick a congestion-control algorithm **by name** —
//! `{"cca": {"name": "Reno", "window": 64.0}}` — so the same JSON means
//! the same controller in every binary, exactly as
//! `hint_rateadapt::ProtocolRegistry` does for rate-adaptation
//! protocols. The two baselines come pre-registered
//! ([`CcaRegistry::builtin`]); downstream code can
//! [`CcaRegistry::register`] additional controllers without touching
//! this crate. Lookups are case-insensitive with one canonical display
//! name per entry.

use crate::controller::{CongestionController, FixedWindow, Reno};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A lookup for a name no registered congestion controller answers to.
/// The error carries (and displays) the registered names so a failed
/// spec field tells the caller what would have worked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownCcaError {
    /// The name that failed to resolve.
    pub name: String,
    /// Canonical names of every registered controller, in registration
    /// order.
    pub known: Vec<String>,
}

impl fmt::Display for UnknownCcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown congestion controller `{}` (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownCcaError {}

/// Names a congestion controller and its window cap in serialized specs.
///
/// `window` is the congestion-window cap in packets: Reno grows toward
/// it, [`FixedWindow`] pins the window to it. It mirrors the legacy TCP
/// model's `cwnd_cap` (and shares its default of 64).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CcaSpec {
    /// Registry name of the algorithm (case-insensitive; canonical names
    /// are `Reno` and `FixedWindow`).
    pub name: String,
    /// Congestion-window cap, packets.
    pub window: f64,
}

impl Default for CcaSpec {
    fn default() -> Self {
        CcaSpec {
            name: "Reno".to_string(),
            window: 64.0,
        }
    }
}

impl CcaSpec {
    /// A spec for `name` with the default window cap.
    pub fn named(name: impl Into<String>) -> CcaSpec {
        CcaSpec {
            name: name.into(),
            ..CcaSpec::default()
        }
    }

    /// Reject parameter sets the sender cannot run: an unknown algorithm
    /// name (checked against the builtin registry) or a window cap below
    /// the model's two-packet loss-recovery floor.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.window.is_finite() && self.window >= 2.0) {
            return Err(format!(
                "cca window must be finite and >= 2 packets, got {}",
                self.window
            ));
        }
        if !CcaRegistry::builtin_shared().contains(&self.name) {
            return Err(CcaRegistry::builtin_shared()
                .unknown(&self.name)
                .to_string());
        }
        Ok(())
    }
}

/// A shared, reusable controller factory: each call yields a fresh
/// controller with clean state.
pub type CcaFactory = Arc<dyn Fn(&CcaSpec) -> Box<dyn CongestionController> + Send + Sync>;

/// A registry of named congestion-control algorithms.
pub struct CcaRegistry {
    /// `(canonical name, factory)` in registration order.
    entries: Vec<(String, CcaFactory)>,
}

impl CcaRegistry {
    /// An empty registry (no controllers known).
    pub fn empty() -> Self {
        CcaRegistry {
            entries: Vec::new(),
        }
    }

    /// The two baseline controllers under their canonical names:
    /// `Reno`, `FixedWindow`.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register("Reno", |s: &CcaSpec| Box::new(Reno::new(s.window)));
        r.register("FixedWindow", |s: &CcaSpec| {
            Box::new(FixedWindow::new(s.window))
        });
        r
    }

    /// The shared builtin registry (constructed once per process).
    pub fn builtin_shared() -> &'static CcaRegistry {
        static BUILTIN: OnceLock<CcaRegistry> = OnceLock::new();
        BUILTIN.get_or_init(CcaRegistry::builtin)
    }

    /// Register (or replace) a controller under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&CcaSpec) -> Box<dyn CongestionController> + Send + Sync + 'static,
    ) {
        let name = name.into();
        let factory: CcaFactory = Arc::new(factory);
        match self.position(&name) {
            Some(i) => self.entries[i] = (name, factory),
            None => self.entries.push((name, factory)),
        }
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    /// The canonical display name for `name`, if registered.
    pub fn canonical_name(&self, name: &str) -> Option<&str> {
        self.position(name).map(|i| self.entries[i].0.as_str())
    }

    /// The factory registered under `name` (case-insensitive), shareable
    /// across threads and calls.
    pub fn factory(&self, name: &str) -> Option<CcaFactory> {
        self.position(name).map(|i| Arc::clone(&self.entries[i].1))
    }

    /// Instantiate a fresh controller for `spec.name`.
    pub fn build(&self, spec: &CcaSpec) -> Option<Box<dyn CongestionController>> {
        self.factory(&spec.name).map(|f| f(spec))
    }

    /// The error for a `name` this registry does not know: carries the
    /// registered names so callers can render an actionable message.
    pub fn unknown(&self, name: &str) -> UnknownCcaError {
        UnknownCcaError {
            name: name.to_string(),
            known: self.names().iter().map(|s| s.to_string()).collect(),
        }
    }

    /// [`CcaRegistry::build`] with an actionable error: the `Err` names
    /// every registered controller.
    pub fn try_build(
        &self,
        spec: &CcaSpec,
    ) -> Result<Box<dyn CongestionController>, UnknownCcaError> {
        self.build(spec).ok_or_else(|| self.unknown(&spec.name))
    }

    /// True when `name` resolves to a registered controller.
    pub fn contains(&self, name: &str) -> bool {
        self.position(name).is_some()
    }

    /// Canonical names in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_both_baselines() {
        let r = CcaRegistry::builtin();
        assert_eq!(r.names(), ["Reno", "FixedWindow"]);
        for name in r.names() {
            let c = r.build(&CcaSpec::named(name)).expect("factory");
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn lookup_is_case_insensitive_with_canonical_display() {
        let r = CcaRegistry::builtin();
        assert!(r.contains("reno"));
        assert!(r.contains("FIXEDWINDOW"));
        assert_eq!(r.canonical_name("reno"), Some("Reno"));
        assert!(!r.contains("made-up"));
        assert!(r.build(&CcaSpec::named("made-up")).is_none());
    }

    #[test]
    fn failed_lookup_lists_registered_names() {
        let r = CcaRegistry::builtin();
        let err = match r.try_build(&CcaSpec::named("vegas")) {
            Err(e) => e,
            Ok(_) => panic!("unknown name must not build"),
        };
        assert_eq!(err.name, "vegas");
        assert_eq!(
            err.to_string(),
            "unknown congestion controller `vegas` (registered: Reno, FixedWindow)"
        );
    }

    #[test]
    fn spec_validation_is_actionable() {
        assert!(CcaSpec::default().validate().is_ok());
        assert!(CcaSpec::named("fixedwindow").validate().is_ok());
        let bad_name = CcaSpec::named("vegas").validate().unwrap_err();
        assert!(bad_name.contains("Reno, FixedWindow"), "{bad_name}");
        let bad_window = CcaSpec {
            window: 1.0,
            ..CcaSpec::default()
        };
        assert!(bad_window.validate().unwrap_err().contains("window"));
        let nan_window = CcaSpec {
            window: f64::NAN,
            ..CcaSpec::default()
        };
        assert!(nan_window.validate().is_err());
    }

    #[test]
    fn window_cap_reaches_the_controller() {
        let r = CcaRegistry::builtin();
        let spec = CcaSpec {
            name: "FixedWindow".to_string(),
            window: 7.0,
        };
        let c = r.build(&spec).unwrap();
        assert_eq!(c.window(), 7.0);
    }

    #[test]
    fn custom_registration_and_replacement() {
        let mut r = CcaRegistry::empty();
        r.register("custom", |s| Box::new(FixedWindow::new(s.window)));
        assert_eq!(r.names(), ["custom"]);
        r.register("Custom", |s| Box::new(FixedWindow::new(s.window)));
        assert_eq!(r.names(), ["Custom"]);
    }
}
