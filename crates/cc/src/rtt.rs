//! Jacobson/Karels round-trip-time estimation.
//!
//! The flow sender arms a retransmission timer per in-flight packet; the
//! timeout comes from the classic smoothed-RTT estimator (RFC 6298
//! without the clock-granularity term — the simulator's clock is exact).
//! All state is integer microseconds, so the estimate is bit-identical
//! on every platform and at any `--jobs`.

use hint_sim::SimDuration;

/// Smoothed RTT + variance, updated per ack.
///
/// * First sample: `srtt = r`, `rttvar = r/2`.
/// * Thereafter: `rttvar = (3·rttvar + |srtt − r|)/4`,
///   `srtt = (7·srtt + r)/8`.
/// * RTO: `srtt + 4·rttvar` (callers clamp to their `[rto_min, rto_max]`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RttEstimator {
    srtt_us: u64,
    rttvar_us: u64,
    samples: u64,
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> RttEstimator {
        RttEstimator::default()
    }

    /// Feed one RTT measurement.
    pub fn observe(&mut self, rtt: SimDuration) {
        let r = rtt.as_micros();
        if self.samples == 0 {
            self.srtt_us = r;
            self.rttvar_us = r / 2;
        } else {
            let dev = self.srtt_us.abs_diff(r);
            self.rttvar_us = (3 * self.rttvar_us + dev) / 4;
            self.srtt_us = (7 * self.srtt_us + r) / 8;
        }
        self.samples += 1;
    }

    /// True once at least one sample has been observed.
    pub fn has_sample(&self) -> bool {
        self.samples > 0
    }

    /// Smoothed RTT (zero before the first sample).
    pub fn srtt(&self) -> SimDuration {
        SimDuration::from_micros(self.srtt_us)
    }

    /// The unclamped retransmission timeout `srtt + 4·rttvar`. Callers
    /// clamp to their configured `[rto_min, rto_max]`; before the first
    /// sample this is zero, so the clamp's lower bound is what arms the
    /// initial timer.
    pub fn rto(&self) -> SimDuration {
        SimDuration::from_micros(self.srtt_us.saturating_add(4 * self.rttvar_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_srtt_and_var() {
        let mut e = RttEstimator::new();
        assert!(!e.has_sample());
        assert!(e.rto().is_zero());
        e.observe(SimDuration::from_millis(100));
        assert!(e.has_sample());
        assert_eq!(e.srtt(), SimDuration::from_millis(100));
        // rto = srtt + 4 * (srtt/2) = 3 * srtt
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_rtt_converges_to_tight_rto() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.observe(SimDuration::from_millis(50));
        }
        assert_eq!(e.srtt(), SimDuration::from_millis(50));
        // Variance decays toward zero on a constant path.
        assert!(e.rto() < SimDuration::from_millis(60), "rto = {}", e.rto());
    }

    #[test]
    fn jitter_widens_the_timeout() {
        let mut steady = RttEstimator::new();
        let mut jittery = RttEstimator::new();
        for i in 0..50u64 {
            steady.observe(SimDuration::from_millis(50));
            let r = if i % 2 == 0 { 20 } else { 80 };
            jittery.observe(SimDuration::from_millis(r));
        }
        assert!(jittery.rto() > steady.rto());
    }

    #[test]
    fn estimator_is_deterministic() {
        let mut a = RttEstimator::new();
        let mut b = RttEstimator::new();
        for i in 0..200u64 {
            let r = SimDuration::from_micros(1000 + (i * 37) % 5000);
            a.observe(r);
            b.observe(r);
        }
        assert_eq!(a, b);
    }
}
