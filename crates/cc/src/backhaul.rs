//! The AP's wired uplink: a serialization rate, a propagation delay, and
//! a finite FIFO drop-tail queue.
//!
//! In the paper's experiments the wireless hop is always the bottleneck.
//! Attaching a [`BackhaulSpec`] to an AP moves the bottleneck upstream:
//! packets serialize onto the wire at `rate_bps`, wait behind earlier
//! packets in a queue of at most `queue_pkts`, and cross the wire in
//! `delay`. A packet arriving at a full queue is dropped — the only loss
//! the wired segment ever produces, and the signal closed-loop senders
//! (`Workload::Flow`) react to.
//!
//! The queue is modeled in virtual time with no event scheduler: because
//! the flow sender offers packets in nondecreasing time order, the queue
//! only needs the departure times of the packets still inside it. That
//! keeps the whole wired segment allocation-light and trivially
//! deterministic.

use hint_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A wired backhaul link behind an AP.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackhaulSpec {
    /// Serialization rate of the wire, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay (applied to data and, symmetrically, to
    /// acks on the return path).
    pub delay: SimDuration,
    /// Queue capacity in packets, counting the packet in service. An
    /// arrival that finds `queue_pkts` packets queued is dropped.
    pub queue_pkts: u32,
}

impl Default for BackhaulSpec {
    /// 100 Mbit/s, 2 ms one-way delay, 50-packet queue: a backhaul fast
    /// enough that the air stays the bottleneck.
    fn default() -> Self {
        BackhaulSpec {
            rate_bps: 100_000_000,
            delay: SimDuration::from_millis(2),
            queue_pkts: 50,
        }
    }
}

impl BackhaulSpec {
    /// Reject parameter sets the queue model cannot run: a zero rate
    /// never drains (time stops), and a zero-capacity queue drops every
    /// packet.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate_bps == 0 {
            return Err(
                "backhaul rate_bps must be >= 1: a zero-rate wire never drains its queue"
                    .to_string(),
            );
        }
        if self.queue_pkts == 0 {
            return Err(
                "backhaul queue_pkts must be >= 1: a zero-capacity queue drops every packet"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Time to serialize `bytes` onto the wire, rounded up to the next
    /// microsecond so a packet always occupies the link for nonzero time.
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        let bits = u64::from(bytes) * 8;
        let us = (bits * 1_000_000).div_ceil(self.rate_bps);
        SimDuration::from_micros(us.max(1))
    }
}

/// A FIFO drop-tail queue in virtual time.
///
/// [`DropTailQueue::offer`] must be called with nondecreasing `now`
/// values (the flow sender emits packets in time order); each call
/// either returns the packet's departure time from the queue or `None`
/// for a tail drop.
#[derive(Clone, Debug)]
pub struct DropTailQueue {
    capacity: usize,
    /// Departure times of packets still in the queue, oldest first.
    departures: VecDeque<SimTime>,
}

impl DropTailQueue {
    /// An empty queue holding at most `capacity` packets.
    pub fn new(capacity: u32) -> DropTailQueue {
        DropTailQueue {
            capacity: capacity as usize,
            departures: VecDeque::new(),
        }
    }

    /// Offer a packet arriving at `now` that needs `tx` of wire time.
    /// Returns its departure time, or `None` if the queue is full
    /// (drop-tail).
    pub fn offer(&mut self, now: SimTime, tx: SimDuration) -> Option<SimTime> {
        while let Some(&front) = self.departures.front() {
            if front <= now {
                self.departures.pop_front();
            } else {
                break;
            }
        }
        if self.departures.len() >= self.capacity {
            return None;
        }
        let start = match self.departures.back() {
            Some(&last) => last.max(now),
            None => now,
        };
        let dep = start + tx;
        self.departures.push_back(dep);
        Some(dep)
    }

    /// Number of packets still queued at `now` (drains first; test aid).
    pub fn occupancy(&mut self, now: SimTime) -> usize {
        while let Some(&front) = self.departures.front() {
            if front <= now {
                self.departures.pop_front();
            } else {
                break;
            }
        }
        self.departures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn tx_time_rounds_up_and_never_hits_zero() {
        let b = BackhaulSpec {
            rate_bps: 8_000_000, // 1 byte per µs
            delay: SimDuration::ZERO,
            queue_pkts: 10,
        };
        assert_eq!(b.tx_time(1500), d(1500));
        assert_eq!(b.tx_time(1), d(1));
        let fast = BackhaulSpec {
            rate_bps: u64::MAX / 16,
            ..b
        };
        assert!(!fast.tx_time(1).is_zero());
    }

    #[test]
    fn validate_rejects_degenerate_wires() {
        assert!(BackhaulSpec::default().validate().is_ok());
        let stalled = BackhaulSpec {
            rate_bps: 0,
            ..BackhaulSpec::default()
        };
        assert!(stalled.validate().unwrap_err().contains("rate_bps"));
        let black_hole = BackhaulSpec {
            queue_pkts: 0,
            ..BackhaulSpec::default()
        };
        assert!(black_hole.validate().unwrap_err().contains("queue_pkts"));
    }

    #[test]
    fn empty_queue_serializes_immediately() {
        let mut q = DropTailQueue::new(4);
        assert_eq!(q.offer(t(100), d(10)), Some(t(110)));
        // Next packet waits behind the first.
        assert_eq!(q.offer(t(100), d(10)), Some(t(120)));
    }

    #[test]
    fn full_queue_drops_the_tail() {
        let mut q = DropTailQueue::new(2);
        assert!(q.offer(t(0), d(100)).is_some());
        assert!(q.offer(t(0), d(100)).is_some());
        assert_eq!(q.offer(t(0), d(100)), None, "third packet must drop");
        // After the head departs there is room again.
        assert_eq!(q.occupancy(t(100)), 1);
        assert!(q.offer(t(100), d(100)).is_some());
    }

    #[test]
    fn idle_gap_resets_the_busy_period() {
        let mut q = DropTailQueue::new(4);
        assert_eq!(q.offer(t(0), d(10)), Some(t(10)));
        // Arriving long after the queue drained: service starts at
        // arrival, not at the old departure time.
        assert_eq!(q.offer(t(1000), d(10)), Some(t(1010)));
    }

    #[test]
    fn departures_are_fifo_and_deterministic() {
        let run = || {
            let mut q = DropTailQueue::new(8);
            let mut deps = Vec::new();
            for i in 0..50u64 {
                deps.push(q.offer(t(i * 3), d(7)));
            }
            deps
        };
        let a = run();
        assert_eq!(a, run());
        let times: Vec<SimTime> = a.into_iter().flatten().collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1], "departures must be strictly ordered");
        }
    }
}
