//! Offline shim for the parts of `serde_json` this workspace uses:
//! [`to_string`], [`from_str`], [`to_string_pretty`], and [`Error`].
//!
//! The value model, compact serializer, and parser live in the sibling
//! `serde` shim (`serde::Value`); this crate provides the familiar
//! `serde_json` entry points over them. Output is byte-compatible with real
//! serde_json for the types this workspace serializes (attribute-free
//! structs and enums over integers, floats, bools, strings, vectors).

use std::fmt;

pub use serde::Value;

/// A serialization or deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    inner: serde::DeError,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(inner: serde::DeError) -> Self {
        Error { inner }
    }
}

/// Serialize `value` to a compact JSON string.
///
/// Infallible for the types this workspace serializes; returns `Result`
/// for signature compatibility with real serde_json.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize `value` to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = Value::parse_json(s)?;
    Ok(T::from_value(&v)?)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                out.push_str(&Value::Str(k.clone()).to_json());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_json()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let s = to_string(&1.25f64).unwrap();
        assert_eq!(s, "1.25");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.25);
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn parse_error_is_error_trait_object() {
        let err = from_str::<bool>("not json").unwrap_err();
        let _boxed: Box<dyn std::error::Error + Send + Sync> = Box::new(err);
    }

    #[test]
    fn pretty_printing_shapes() {
        let v = vec![vec![1u8], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("[\n"));
        let back: Vec<Vec<u8>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
