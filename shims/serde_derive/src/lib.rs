//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the sibling `serde` shim.
//!
//! The build environment has no crates.io access, so there is no `syn` or
//! `quote`; the input item is parsed directly from the proc-macro token
//! stream. That is tractable because the supported shapes are exactly the
//! ones this workspace derives on:
//!
//! * structs with named fields
//! * tuple structs (a single field serializes transparently, newtype-style;
//!   more fields serialize as an array)
//! * enums whose variants are unit (with optional explicit discriminants),
//!   newtype/tuple, or struct-like
//!
//! Generic parameters, `#[serde(...)]` attributes, and unions are not
//! supported and produce a `compile_error!` naming this crate, so a future
//! reader hits a signpost instead of a confusing expansion failure.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under derive.
enum Item {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` — number of unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize` (shim edition).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (shim edition).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match ident_at(&tokens, i) {
        Some(k) if k == "struct" || k == "enum" => k,
        _ => return Err("serde shim derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;

    let name = ident_at(&tokens, i).ok_or("serde shim derive: expected type name")?;
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported \
                 (see shims/serde_derive)"
            ));
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            } else {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(&body)?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde shim derive: malformed enum".to_string());
            }
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(&body),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Ok(Item::UnitStruct { name })
        }
        _ => Err(format!("serde shim derive: malformed `{kind} {name}`")),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` (and `#![...]`) attribute groups.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
                    if p.as_char() == '!' {
                        *i += 1;
                    }
                }
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        *i += 1;
                        continue;
                    }
                }
                return;
            }
            _ => return,
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advance past a type (or discriminant expression) to the next top-level
/// comma, tracking `<`/`>` nesting so commas inside generics don't split.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected field name, got {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        skip_to_comma(tokens, &mut i);
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        skip_visibility(tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_to_comma(tokens, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Named(parse_named_fields(&body)?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= 0x01`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                skip_to_comma(tokens, &mut i);
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `,` after variant, got {other:?}"
                ))
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            (
                name,
                format!("::serde::Value::Object(::std::vec![{pairs}])"),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            (name, format!("::serde::Value::Array(::std::vec![{items}])"))
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| gen_serialize_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),")
        }
        VariantShape::Tuple(arity) => {
            let binds = (0..*arity)
                .map(|k| format!("__f{k}"))
                .collect::<Vec<_>>()
                .join(", ");
            let inner = if *arity == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from({vn:?}), {inner})]),"
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from({vn:?}), \
                      ::serde::Value::Object(::std::vec![{pairs}]))]),"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::__private::field(__fields, {f:?}, {name:?})?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            (
                name,
                format!(
                    "let __fields = ::serde::__private::as_object(v, {name:?})?;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let inits = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            (
                name,
                format!(
                    "match v {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {arity} =>\n\
                             ::std::result::Result::Ok({name}({inits})),\n\
                         other => ::std::result::Result::Err(\
                             ::serde::DeError::expected({name:?}, other)),\n\
                     }}"
                ),
            )
        }
        Item::UnitStruct { name } => (
            name,
            format!(
                "match v {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::expected({name:?}, other)),\n\
                 }}"
            ),
        ),
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| gen_deserialize_data_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            (
                name,
                format!(
                    "match v {{\n\
                         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {unit_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                         }},\n\
                         ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                             let (__tag, __inner) = &__fields[0];\n\
                             match __tag.as_str() {{\n\
                                 {data_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                             }}\n\
                         }}\n\
                         other => ::std::result::Result::Err(\
                             ::serde::DeError::expected({name:?}, other)),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize_data_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => unreachable!("unit variants handled as strings"),
        VariantShape::Tuple(1) => format!(
            "{vn:?} => ::std::result::Result::Ok(\
                 {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
        ),
        VariantShape::Tuple(arity) => {
            let inits = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{vn:?} => match __inner {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {arity} =>\n\
                         ::std::result::Result::Ok({name}::{vn}({inits})),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"{name}::{vn}\", other)),\n\
                 }},"
            )
        }
        VariantShape::Named(fields) => {
            let ty = format!("{name}::{vn}");
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::__private::field(__vfields, {f:?}, {ty:?})?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "{vn:?} => {{\n\
                     let __vfields = ::serde::__private::as_object(__inner, {ty:?})?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                 }},"
            )
        }
    }
}
