//! Strategies: deterministic samplers for property inputs.

use std::marker::PhantomData;
use std::ops::Range;

/// The deterministic RNG driving every property test (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator for one test case: the test's path and the case
    /// index fully determine every draw, so failures reproduce exactly.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type, mirroring `proptest::Strategy`.
///
/// Unlike real proptest there is no value tree and no shrinking: `sample`
/// produces the final value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`, mirroring `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Resample until `f` accepts a value, mirroring `prop_filter`.
    /// Panics after 1000 consecutive rejections (pathological filter).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the types this workspace samples.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // A mix of magnitudes, signs, and exact zeros — not the exotic
        // bit-pattern zoo real proptest explores, but enough spread to
        // exercise numeric code.
        let mag = rng.unit_f64() * 40.0 - 20.0; // exponent in [-20, 20)
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        match rng.below(16) {
            0 => 0.0,
            _ => sign * rng.unit_f64() * mag.exp2(),
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
