//! Offline shim for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small property-testing harness that is source-compatible with the
//! proptest subset its tests are written against:
//!
//! * the [`proptest!`] macro over `name(pat in strategy, ...) { body }`
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//! * [`Strategy`] with `prop_map`, integer/float range strategies,
//!   `any::<T>()`, tuple strategies, [`Just`], and
//!   [`collection::vec`]
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message of the underlying assert) but is not minimised.
//! * **Deterministic cases.** Each test runs a fixed number of cases
//!   (default 64, override with `PROPTEST_CASES`) seeded per case index,
//!   so failures always reproduce.
//!
//! Both trades favour reproducible CI over exploration depth, which is the
//! role property tests play in this repository's tier-1 verify.

pub mod collection;
pub mod strategy;

pub use strategy::{any, Any, Arbitrary, Just, Strategy, TestRng};

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body for
/// [`cases()`](crate::cases) deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::cases();
            // Evaluate each strategy expression once, like real proptest.
            let __strats = ($(($strat),)*);
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__sample_into!(__strats, __rng, ($($pat),*));
                $body
            }
        }
        $crate::proptest!($($rest)*);
    };
}

/// Internal helper for [`proptest!`]: destructure the strategy tuple and
/// bind each pattern to a fresh sample.
#[doc(hidden)]
#[macro_export]
macro_rules! __sample_into {
    ($strats:ident, $rng:ident, ()) => {};
    ($strats:ident, $rng:ident, ($p0:pat)) => {
        let ($p0,) = ($crate::Strategy::sample(&$strats.0, &mut $rng),);
    };
    ($strats:ident, $rng:ident, ($p0:pat, $p1:pat)) => {
        let ($p0, $p1) = (
            $crate::Strategy::sample(&$strats.0, &mut $rng),
            $crate::Strategy::sample(&$strats.1, &mut $rng),
        );
    };
    ($strats:ident, $rng:ident, ($p0:pat, $p1:pat, $p2:pat)) => {
        let ($p0, $p1, $p2) = (
            $crate::Strategy::sample(&$strats.0, &mut $rng),
            $crate::Strategy::sample(&$strats.1, &mut $rng),
            $crate::Strategy::sample(&$strats.2, &mut $rng),
        );
    };
    ($strats:ident, $rng:ident, ($p0:pat, $p1:pat, $p2:pat, $p3:pat)) => {
        let ($p0, $p1, $p2, $p3) = (
            $crate::Strategy::sample(&$strats.0, &mut $rng),
            $crate::Strategy::sample(&$strats.1, &mut $rng),
            $crate::Strategy::sample(&$strats.2, &mut $rng),
            $crate::Strategy::sample(&$strats.3, &mut $rng),
        );
    };
    ($strats:ident, $rng:ident, ($p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat)) => {
        let ($p0, $p1, $p2, $p3, $p4) = (
            $crate::Strategy::sample(&$strats.0, &mut $rng),
            $crate::Strategy::sample(&$strats.1, &mut $rng),
            $crate::Strategy::sample(&$strats.2, &mut $rng),
            $crate::Strategy::sample(&$strats.3, &mut $rng),
            $crate::Strategy::sample(&$strats.4, &mut $rng),
        );
    };
    ($strats:ident, $rng:ident, ($p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat, $p5:pat)) => {
        let ($p0, $p1, $p2, $p3, $p4, $p5) = (
            $crate::Strategy::sample(&$strats.0, &mut $rng),
            $crate::Strategy::sample(&$strats.1, &mut $rng),
            $crate::Strategy::sample(&$strats.2, &mut $rng),
            $crate::Strategy::sample(&$strats.3, &mut $rng),
            $crate::Strategy::sample(&$strats.4, &mut $rng),
            $crate::Strategy::sample(&$strats.5, &mut $rng),
        );
    };
}

/// Assert a condition inside a property body (panics on failure, like
/// `assert!`; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!(x < 100);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn any_and_map(b in any::<bool>(), n in (0u8..3).prop_map(|v| v * 10)) {
            prop_assert!(matches!(b, true | false));
            prop_assert!(n == 0 || n == 10 || n == 20);
        }

        #[test]
        fn vec_lengths(xs in collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn tuples_sample_componentwise((a, b) in (0u8..4, 10u8..14)) {
            prop_assert!(a < 4);
            prop_assert_eq!(b / 10, 1);
            prop_assert_ne!(a as i32 - 20, b as i32);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = TestRng::for_case("t", 3);
        let mut r2 = TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(Strategy::sample(&s, &mut r1), Strategy::sample(&s, &mut r2));
    }
}
