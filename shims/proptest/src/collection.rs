//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
