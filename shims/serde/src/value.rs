//! The JSON value tree, its compact serializer, and its parser.
//!
//! Lives in the `serde` shim (rather than `serde_json`) so that
//! derive-generated code only ever references one crate; `serde_json`
//! re-wraps this module behind the familiar `to_string`/`from_str` API.

use std::fmt;

/// A parsed or to-be-serialized JSON value.
///
/// Integers and floats are kept distinct so that `u64` values round-trip
/// exactly (floats would lose precision past 2^53). Object fields preserve
/// insertion order, matching what derive-generated serializers emit.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number with no fractional or exponent part.
    Int(i128),
    /// A JSON number with a fractional or exponent part.
    Float(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object as an ordered field list.
    Object(Vec<(String, Value)>),
}

/// A deserialization (or parse) error with a human-readable message.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Build a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError::msg(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

impl Value {
    /// Render as compact JSON (serde_json's default formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest round-trip formatting; always parses
                    // back to the identical f64.
                    let s = f.to_string();
                    out.push_str(&s);
                    // serde_json always marks floats as floats; keep numbers
                    // like 1.0 distinguishable from the integer 1.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // Non-finite floats are not representable in JSON.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

impl Value {
    /// Parse a JSON document. The entire input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse_json(input: &str) -> Result<Value, DeError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DeError::msg(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, DeError> {
        let b = self
            .peek()
            .ok_or_else(|| DeError::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        let got = self.bump()?;
        if got != b {
            return Err(DeError::msg(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self
            .peek()
            .ok_or_else(|| DeError::msg("unexpected end of input"))?
        {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(DeError::msg(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(DeError::msg(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(DeError::msg("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| DeError::msg("invalid codepoint"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| DeError::msg("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(DeError::msg(format!(
                            "invalid escape '\\{}'",
                            other as char
                        )))
                    }
                },
                // Multi-byte UTF-8: the input is a &str, so continuation
                // bytes are guaranteed well-formed; collect the full char.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let extra = if b >= 0xF0 {
                        3
                    } else if b >= 0xE0 {
                        2
                    } else {
                        1
                    };
                    let start = self.pos - 1;
                    self.pos += extra;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| DeError::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DeError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| DeError::msg("invalid \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| DeError::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| DeError::msg(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                other => {
                    return Err(DeError::msg(format!(
                        "expected ',' or ']' in array, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(fields)),
                other => {
                    return Err(DeError::msg(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-7", "123456789012345678"] {
            let v = Value::parse_json(src).unwrap();
            assert_eq!(v.to_json(), src);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.5, -3.25, 1e-7, 6.02e23, 1.0, -0.0, f64::MIN_POSITIVE] {
            let v = Value::Float(f);
            let back = Value::parse_json(&v.to_json()).unwrap();
            match back {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits(), "{f}"),
                Value::Int(i) => assert_eq!(i as f64, f),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn strings_with_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}é";
        let v = Value::Str(s.to_string());
        let back = Value::parse_json(&v.to_json()).unwrap();
        assert_eq!(back, v);
        // Also parse explicit \u escapes including a surrogate pair.
        let v = Value::parse_json(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A\u{1F600}".to_string()));
    }

    #[test]
    fn nested_structures() {
        let src = r#"{"a":[1,2.5,{"b":null}],"c":"x","d":[]}"#;
        let v = Value::parse_json(src).unwrap();
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Value::parse_json("").is_err());
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("nul").is_err());
        assert!(Value::parse_json("1 2").is_err());
        assert!(Value::parse_json(r#""\q""#).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse_json(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_json(), r#"{"a":[1,2]}"#);
    }
}
