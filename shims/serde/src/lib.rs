//! Offline shim for the parts of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework that is drop-in compatible
//! with the subset of serde the code touches: `#[derive(Serialize,
//! Deserialize)]` on attribute-free structs and enums, serialized through
//! JSON by the sibling `serde_json` shim.
//!
//! Unlike real serde, the data model here is not format-generic: values
//! serialize into a concrete JSON [`Value`] tree. That is exactly what the
//! workspace needs (its only format is JSON, via `serde_json`), and it
//! keeps the shim small enough to audit. The derive macros generate
//! `to_value`/`from_value` implementations matching serde_json's default
//! encoding conventions:
//!
//! * named struct → object with fields in declaration order
//! * one-field tuple struct (newtype) → the inner value, transparently
//! * multi-field tuple struct → array of the field values
//! * unit struct → `null`; unit enum variant → the variant name as a string
//! * newtype enum variant → `{"Variant": value}`
//! * struct enum variant → `{"Variant": {fields…}}`

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{DeError, Value};

/// A type that can be serialized into a JSON [`Value`].
pub trait Serialize {
    /// Convert `self` to a JSON value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::msg(format!(
                            "integer {} out of range for {}", i, stringify!($t)))),
                    // Tolerate a float that is exactly integral (e.g. "1e3").
                    // Integral f64s below 2^127 convert to i128 exactly, so
                    // going through i128 avoids the saturating-cast hole at
                    // the 64-bit boundaries (2^64 must be out of range for
                    // u64, not clamp to u64::MAX).
                    Value::Float(f) if f.fract() == 0.0
                        && f.abs() < 1.7e38 =>
                        <$t>::try_from(*f as i128).map_err(|_| DeError::msg(format!(
                            "integer {} out of range for {}", f, stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            // Real serde_json cannot represent non-finite floats; we encode
            // them as null and restore NaN here so round-trips never panic.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        const LEN: usize = [$($idx),+].len();
                        if items.len() != LEN {
                            return Err(DeError::msg(format!(
                                "expected tuple of length {}, got {}", LEN, items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple (array)", other)),
                }
            }
        }
    )*};
}

impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code (stable surface for serde_derive)
// ---------------------------------------------------------------------------

/// Machinery the derive macros expand against. Not part of the public API
/// contract; kept `pub` because macro expansions live in downstream crates.
pub mod __private {
    pub use super::{DeError, Deserialize, Serialize, Value};

    /// Look up a required object field during deserialization.
    pub fn field<'v>(
        fields: &'v [(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<&'v Value, DeError> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::msg(format!("missing field `{name}` in {ty}")))
    }

    /// View a value as an object's field list, or fail with context.
    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        match v {
            Value::Object(fields) => Ok(fields),
            other => Err(DeError::expected(ty, other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = 42u64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 42);
        let v = (-3i32).to_value();
        assert_eq!(i32::from_value(&v).unwrap(), -3);
        let v = 1.5f64.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), 1.5);
        let v = true.to_value();
        assert!(bool::from_value(&v).unwrap());
        let v = "hi".to_string().to_value();
        assert_eq!(String::from_value(&v).unwrap(), "hi");
    }

    #[test]
    fn collections_round_trip() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let t = (1u8, 2.5f64, true);
        assert_eq!(<(u8, f64, bool)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn out_of_range_int_rejected() {
        let v = Value::Int(300);
        assert!(u8::from_value(&v).is_err());
    }

    #[test]
    fn float_one_past_u64_max_rejected_not_saturated() {
        // 2^64 (u64::MAX rounds up to it in f64) must be out of range,
        // not silently clamp to u64::MAX.
        let v = Value::Float(18446744073709551616.0);
        assert!(u64::from_value(&v).is_err());
        let v = Value::Float(9223372036854775808.0); // 2^63
        assert!(i64::from_value(&v).is_err());
        // In-range integral floats still convert.
        let v = Value::Float(1e3);
        assert_eq!(u64::from_value(&v).unwrap(), 1000);
    }
}
