//! Offline shim for the parts of `criterion` this workspace uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], [`criterion_group!`], and [`criterion_main!`].
//!
//! The build environment has no crates.io access, so this crate provides a
//! small, honest timing harness instead of criterion's statistical
//! machinery: each benchmark is warmed up, then run in timed batches until
//! a measurement budget is spent, and the per-iteration mean, minimum, and
//! maximum over the batches are reported. There is no outlier rejection or
//! regression analysis — numbers are for trajectory tracking (is this PR
//! faster or slower than the last one?), not publication.
//!
//! Set `CRITERION_SNAPSHOT_PATH=/path/to/file.json` to also write the
//! results as a JSON array — `BENCH_baseline.json` at the repo root is
//! generated this way (see README.md).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark identifier (group path included).
    pub id: String,
    /// Mean nanoseconds per iteration across all measured batches.
    pub mean_ns: f64,
    /// Fastest batch, ns per iteration.
    pub min_ns: f64,
    /// Slowest batch, ns per iteration.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// The benchmark harness. Collects measurements and reports them when
/// dropped (end of `criterion_main!`).
pub struct Criterion {
    measurements: Vec<Measurement>,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurements: Vec::new(),
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Configure from CLI arguments. The shim accepts and ignores
    /// criterion's flags (`--bench` etc. are handled by cargo itself).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(r) => {
                println!(
                    "{id:<40} {:>12.1} ns/iter  (min {:.1}, max {:.1}, n={})",
                    r.0, r.1, r.2, r.3
                );
                self.measurements.push(Measurement {
                    id: id.to_string(),
                    mean_ns: r.0,
                    min_ns: r.1,
                    max_ns: r.2,
                    iterations: r.3,
                });
            }
            None => println!("{id:<40} (no iterations run)"),
        }
        self
    }

    /// Start a named group; benchmark ids inside are `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Write measurements as JSON to `path`.
    fn write_snapshot(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, m) in self.measurements.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            // Manual JSON keeps this shim dependency-free; ids are plain
            // ASCII benchmark names, so escaping quotes/backslashes suffices.
            let id = m.id.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(
                "  {{\"id\":\"{id}\",\"mean_ns\":{:.2},\"min_ns\":{:.2},\
                 \"max_ns\":{:.2},\"iterations\":{}}}",
                m.mean_ns, m.min_ns, m.max_ns, m.iterations
            ));
        }
        out.push_str("\n]\n");
        std::fs::write(path, out)
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Ok(path) = std::env::var("CRITERION_SNAPSHOT_PATH") {
            if !path.is_empty() {
                match self.write_snapshot(&path) {
                    Ok(()) => println!("\nwrote benchmark snapshot to {path}"),
                    Err(e) => eprintln!("\nfailed to write snapshot to {path}: {e}"),
                }
            }
        }
    }
}

/// A named benchmark group (`group.bench_function(...)`, `group.finish()`).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    result: Option<(f64, f64, f64, u64)>,
}

impl Bencher {
    /// Measure `f`, keeping its return value alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, and use the
        // observed speed to size measurement batches (~1/50 of the
        // measurement budget each, at least 1 iteration, so min/max
        // span a few dozen batches).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((self.measure.as_nanos() as f64 / 50.0 / per_iter.max(1.0)) as u64).max(1);

        let mut total_iters: u64 = 0;
        let mut total_ns: f64 = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns: f64 = 0.0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64;
            let per = ns / batch as f64;
            min_ns = min_ns.min(per);
            max_ns = max_ns.max(per);
            total_ns += ns;
            total_iters += batch;
        }
        self.result = Some((
            total_ns / total_iters.max(1) as f64,
            min_ns,
            max_ns,
            total_iters,
        ));
    }
}

/// Group benchmark functions under one name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Produce `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            measurements: Vec::new(),
        };
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(1));
                x
            })
        });
        let m = &c.measurements()[0];
        assert_eq!(m.id, "noop_add");
        assert!(m.mean_ns > 0.0);
        assert!(m.iterations > 0);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            measurements: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("one", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
        assert_eq!(c.measurements()[0].id, "grp/one");
    }
}
