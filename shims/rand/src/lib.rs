//! Offline shim for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation of the `rand` surface
//! it actually touches: the [`RngCore`] trait, the [`Rng`] extension trait
//! with `gen_range`/`gen_bool`/`gen`, and the (never-failing) [`Error`]
//! type. Generators themselves live in `hint-sim` (`RngStream` implements
//! [`RngCore`] directly), so this crate carries no state of its own.
//!
//! Semantics intentionally mirror rand 0.8 where the workspace depends on
//! them; anything unused is simply absent. Swapping the real `rand` back in
//! (by editing `[workspace.dependencies]`) changes the exact draw values of
//! `gen_range` but no public API.

use std::fmt;

/// Error type for RNG operations. The generators in this workspace are
/// infallible, so this is never constructed outside of trait plumbing.
#[derive(Debug)]
pub struct Error {
    _priv: (),
}

impl Error {
    /// Construct an error (exists only for API completeness).
    pub fn new() -> Self {
        Error { _priv: () }
    }
}

impl Default for Error {
    fn default() -> Self {
        Error::new()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore` 0.8.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random bytes, reporting failure via `Result`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A range that knows how to sample a uniform value from an [`RngCore`],
/// mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a uniform f64 in `[0, 1)` using the top 53 bits of a `u64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything a simulation statistic can resolve.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Types that can be drawn uniformly with [`Rng::gen`], mirroring the
/// `Standard` distribution of rand 0.8 for the types this workspace uses.
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Convenience extension methods on [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }

    /// Draw a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer, good enough to test plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = Counter(42);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(0..8);
            assert!(v < 8);
            let w: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: u64 = r.gen_range(10..=20);
            assert!((10..=20).contains(&x));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut r = Counter(1);
        let mut buf = [0u8; 13];
        r.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
