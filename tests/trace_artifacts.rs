//! Integration: traces are replayable artifacts, as in the paper's
//! methodology — save, load, and replay must give identical results.

use sensor_hints::channel::{Environment, Trace};
use sensor_hints::rateadapt::protocols::RapidSample;
use sensor_hints::rateadapt::{HintStream, LinkSimulator, Workload};
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::SimDuration;

fn mixed_trace(seed: u64) -> (Trace, MotionProfile) {
    let profile = MotionProfile::half_and_half(SimDuration::from_secs(5), true);
    let trace = Trace::generate(
        &Environment::hallway(),
        &profile,
        SimDuration::from_secs(10),
        seed,
    );
    (trace, profile)
}

#[test]
fn saved_trace_replays_identically() {
    let (trace, profile) = mixed_trace(12345);
    let dir = std::env::temp_dir().join("sensor-hints-it");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("mixed.json");
    trace.save(&path).expect("save");
    let loaded = Trace::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.len(), trace.len());
    assert_eq!(loaded.seed, trace.seed);
    assert_eq!(loaded.noise_loss, trace.noise_loss);

    let hints = HintStream::oracle(&profile, SimDuration::from_secs(10), SimDuration::ZERO);
    let run = |t: &Trace| {
        let mut rs = RapidSample::new();
        LinkSimulator::new(t)
            .with_hints(&hints)
            .run(&mut rs, &Workload::Udp)
    };
    let a = run(&trace);
    let b = run(&loaded);
    assert_eq!(a.packets_delivered, b.packets_delivered);
    assert_eq!(a.goodput_bps, b.goodput_bps);
    assert_eq!(a.rate_usage, b.rate_usage);
}

#[test]
fn full_pipeline_is_deterministic() {
    // Same seeds ⇒ bit-identical goodput, twice, through trace
    // generation + sensor hints + TCP simulation.
    let run = || {
        let (trace, profile) = mixed_trace(777);
        let hints = HintStream::from_sensors(&profile, SimDuration::from_secs(10), 778);
        let mut rs = RapidSample::new();
        LinkSimulator::new(&trace)
            .with_hints(&hints)
            .run(&mut rs, &Workload::tcp())
            .goodput_bps
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let (a, _) = mixed_trace(1);
    let (b, _) = mixed_trace(2);
    let differs = a
        .slots
        .iter()
        .zip(&b.slots)
        .any(|(x, y)| x.fates != y.fates);
    assert!(differs);
}

#[test]
fn trace_ground_truth_matches_profile() {
    let (trace, profile) = mixed_trace(42);
    for (i, slot) in trace.slots.iter().enumerate() {
        let t = sensor_hints::sim::SimTime::from_micros(i as u64 * 5000);
        assert_eq!(slot.moving, profile.is_moving_at(t), "slot {i}");
        assert_eq!(slot.speed_mps, profile.speed_at(t), "slot {i}");
    }
}
