//! Integration across subsystems: probing with sensor hints, vehicular
//! hints over the wire format, and the AP consuming device hints.

use sensor_hints::channel::{Environment, Trace};
use sensor_hints::mac::hint_proto::HintWire;
use sensor_hints::mac::BitRate;
use sensor_hints::rateadapt::HintStream;
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::{OnlineStats, SimDuration};
use sensor_hints::topology::adaptive::{fixed_rate_run, AdaptiveProber};
use sensor_hints::topology::delivery::{actual_series, held_tracking_error};
use sensor_hints::topology::ProbeStream;

#[test]
fn sensor_hinted_probing_beats_fixed_slow_probing() {
    // The Ch. 4 protocol with hints from the *real* detector pipeline
    // (not ground truth): accuracy must still beat the 1 probe/s baseline
    // while sending far fewer probes than always-fast.
    let env = Environment::mesh_edge();
    let step = SimDuration::from_millis(100);
    let mut adaptive = OnlineStats::new();
    let mut fixed = OnlineStats::new();
    let mut probes_sent = 0u64;
    let mut fast_equiv = 0u64;
    for seed in 0..5u64 {
        let profile = MotionProfile::half_and_half(SimDuration::from_secs(30), seed % 2 == 0);
        let dur = SimDuration::from_secs(60);
        let trace = Trace::generate(&env, &profile, dur, 8800 + seed);
        let stream = ProbeStream::from_trace(&trace, BitRate::R6, seed);
        let hints = HintStream::from_sensors(&profile, dur, 8900 + seed);
        let actual = actual_series(&stream);
        let run = AdaptiveProber::new().run(&stream, |t| hints.query(t));
        adaptive.merge(&held_tracking_error(&run.estimates, &actual, step));
        fixed.merge(&held_tracking_error(
            &fixed_rate_run(&stream, 1.0),
            &actual,
            step,
        ));
        probes_sent += run.probes_sent;
        fast_equiv += run.fast_equivalent;
    }
    assert!(
        adaptive.mean() < fixed.mean(),
        "adaptive {:.3} vs fixed-1/s {:.3}",
        adaptive.mean(),
        fixed.mean()
    );
    assert!(
        probes_sent * 3 < fast_equiv * 2,
        "adaptive sent {probes_sent} vs always-fast {fast_equiv}"
    );
}

#[test]
fn heading_hints_survive_the_wire_within_cte_tolerance() {
    // Vehicular CTE consumes heading hints quantised to 2° on the wire
    // (Sec. 2.3). Quantisation must never change a Table 5.1 bucket by
    // more than one notch: check the wire error bound over the circle.
    for tenth in 0..3600u32 {
        let h = f64::from(tenth) / 10.0;
        let bytes = HintWire::Heading(h).encode();
        let HintWire::Heading(back) = HintWire::decode(bytes).expect("valid") else {
            panic!("wrong variant");
        };
        let err = (back - h).abs().min(360.0 - (back - h).abs());
        assert!(err <= 1.0 + 1e-9, "heading {h} err {err}");
    }
}

#[test]
fn movement_hint_changes_probing_bandwidth_not_accuracy_class() {
    // With a receiver that never moves, the adaptive prober must send
    // (almost) exactly the slow rate's probe count — hints should cost
    // nothing when nothing happens.
    let env = Environment::mesh_edge();
    let profile = MotionProfile::stationary(SimDuration::from_secs(60));
    let trace = Trace::generate(&env, &profile, SimDuration::from_secs(60), 8801);
    let stream = ProbeStream::from_trace(&trace, BitRate::R6, 1);
    let hints = HintStream::from_sensors(&profile, SimDuration::from_secs(60), 2);
    let run = AdaptiveProber::new().run(&stream, |t| hints.query(t));
    // 60 s at 1 probe/s ⇒ ~60 probes (allow detector blips).
    assert!(
        (55..=80).contains(&run.probes_sent),
        "static probing sent {}",
        run.probes_sent
    );
}
