//! The checked-in scenario spec files are executable contracts: each must
//! load, validate, and reproduce the equivalent hand-coded builder run
//! **bit-identically** (same seeds ⇒ same `SimResult`). This is the
//! acceptance property behind the `scenario_run` CLI — a JSON file is the
//! whole experiment.

use sensor_hints::rateadapt::scenario::{
    EnvironmentSpec, HintSpec, MotionSpec, ScenarioBuilder, ScenarioSpec,
};
use sensor_hints::rateadapt::Workload;
use sensor_hints::sim::SimDuration;
use std::path::{Path, PathBuf};

fn spec_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name)
}

#[test]
fn mixed_office_tcp_spec_matches_hand_coded_builder_run() {
    let spec = ScenarioSpec::load(&spec_path("mixed_office_tcp.json")).expect("spec loads");
    let from_file = spec.run().expect("spec is valid");

    // The same experiment written out in Rust.
    let hand_coded = ScenarioBuilder::new()
        .environment(EnvironmentSpec::Office)
        .motion(MotionSpec::HalfAndHalf { static_first: true })
        .duration(SimDuration::from_secs(20))
        .seed(0xCAFE)
        .workload(Workload::tcp())
        .protocol("HintAware")
        .sensor_hints()
        .build()
        .expect("valid scenario")
        .run();

    assert_eq!(from_file.protocol, "HintAware");
    assert_eq!(from_file.environment, "office");
    // Bit-identical: goodput, delivery counts, rate usage, per-second
    // series — the full SimResult.
    assert_eq!(from_file.result, hand_coded.result);
    assert!(from_file.result.goodput_bps > 0.0);
}

#[test]
fn vehicular_udp_spec_matches_hand_coded_builder_run() {
    let spec = ScenarioSpec::load(&spec_path("vehicular_udp.json")).expect("spec loads");
    let from_file = spec.run().expect("spec is valid");

    let hand_coded = ScenarioBuilder::new()
        .environment(EnvironmentSpec::Vehicular)
        .motion(MotionSpec::Vehicle {
            speed_mps: 15.0,
            heading_deg: 0.0,
        })
        .duration(SimDuration::from_secs(10))
        .seed(7)
        .workload(Workload::Udp)
        .protocol("RapidSample")
        .oracle_hints(SimDuration::from_millis(100))
        .build()
        .expect("valid scenario")
        .run();

    assert_eq!(from_file.result, hand_coded.result);
    assert_eq!(from_file.environment, "vehicular");
}

#[test]
fn checked_in_specs_round_trip_through_their_own_serialization() {
    for name in ["mixed_office_tcp.json", "vehicular_udp.json"] {
        let spec = ScenarioSpec::load(&spec_path(name)).expect("spec loads");
        let reparsed = ScenarioSpec::from_json(&spec.to_json_pretty()).expect("round-trips");
        assert_eq!(reparsed, spec, "{name}");
    }
}

#[test]
fn checked_in_hint_seed_follows_derivation_convention() {
    // mixed_office_tcp.json leaves the sensor seed null; the compiled
    // scenario must derive seed ^ 0x5EED exactly as `evaluate` does.
    let spec = ScenarioSpec::load(&spec_path("mixed_office_tcp.json")).expect("spec loads");
    assert_eq!(spec.hints, HintSpec::Sensors { seed: None });
    let derived = spec.compile().expect("valid");
    let explicit = ScenarioSpec {
        hints: HintSpec::Sensors {
            seed: Some(spec.seed ^ 0x5EED),
        },
        ..spec
    }
    .compile()
    .expect("valid");
    assert_eq!(derived.run().result, explicit.run().result);
}
