//! End-to-end integration: the full hint path of Fig. 2-1.
//!
//! receiver sensors → jerk detector → hint service → frame hint field →
//! wire bytes → sender's neighbour table → hint-aware rate adaptation.
//! Every hop uses the real implementation; nothing is mocked.

use sensor_hints::channel::{Environment, Trace};
use sensor_hints::device::HintedDevice;
use sensor_hints::mac::hint_proto::{HintField, HintWire};
use sensor_hints::mac::{BitRate, MacTiming};
use sensor_hints::neighbors::NeighborHints;
use sensor_hints::rateadapt::protocols::{HintAware, RapidSample, RateAdapter, SampleRate};
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::{RngStream, SimDuration, SimTime};

/// Drive a rate adapter over a trace where the movement hint travels the
/// real wire path from a receiver device. Returns goodput in bps.
fn run_with_wire_hints(trace: &Trace, receiver: &mut HintedDevice, use_hints: bool) -> f64 {
    let timing = MacTiming::ieee80211a();
    let mut sample = SampleRate::new();
    let mut rapid = RapidSample::new();
    let mut hint_aware = HintAware::with_strategies(RapidSample::new(), SampleRate::new());
    let adapter: &mut dyn RateAdapter = if use_hints {
        &mut hint_aware
    } else {
        &mut sample
    };
    let _ = &mut rapid;

    let mut neighbor_table: NeighborHints<u8> = NeighborHints::new();
    let mut rng = RngStream::new(trace.seed).derive("e2e-noise");
    let mut now = SimTime::ZERO;
    let end = SimTime::ZERO + trace.duration();
    let mut delivered = 0u64;

    while now < end {
        // The receiver's sensing pipeline runs in real time.
        receiver.advance_to(now);

        let rate = adapter.pick_rate(now);
        let ok = trace.fate(now, rate) && !rng.chance(trace.noise_loss);
        now += timing.exchange_airtime(rate, 1000);
        adapter.report(now, rate, ok);

        if ok {
            delivered += 1;
            // The ACK carries the receiver's hint field: encode to the
            // two-byte wire form and decode on the sender side — the full
            // Sec. 2.3 path.
            let field = receiver.outgoing_hint_field();
            let wire_bytes = field
                .tlv
                .expect("device always attaches a movement TLV")
                .encode();
            let decoded = HintWire::decode(wire_bytes).expect("valid wire bytes");
            let rx_field = HintField::with_tlv(decoded);
            neighbor_table.on_frame(1, now, &rx_field);
            adapter.report_movement_hint(now, neighbor_table.is_moving(1));
        }
    }
    delivered as f64 * 8000.0 / trace.duration().as_secs_f64()
}

#[test]
fn wire_delivered_hints_beat_hint_free_samplerate_on_mixed_trace() {
    let env = Environment::office();
    let mut hint_total = 0.0;
    let mut plain_total = 0.0;
    for seed in 0..4u64 {
        let profile = MotionProfile::half_and_half(SimDuration::from_secs(10), seed % 2 == 0);
        let trace = Trace::generate(&env, &profile, SimDuration::from_secs(20), 9000 + seed);
        let mut rx1 = HintedDevice::new(profile.clone(), 100 + seed);
        let mut rx2 = HintedDevice::new(profile.clone(), 100 + seed);
        hint_total += run_with_wire_hints(&trace, &mut rx1, true);
        plain_total += run_with_wire_hints(&trace, &mut rx2, false);
    }
    // This test validates the *plumbing* — hints crossing the real wire
    // path must reach the adapter and help, not hurt. (Magnitude claims
    // are owned by the Fig. 3-5 harness, which runs the paper's TCP
    // workload with MAC retry chains.)
    assert!(
        hint_total > 1.01 * plain_total,
        "wire-hint HintAware {:.1} Mbps should beat SampleRate {:.1} Mbps",
        hint_total / 4e6,
        plain_total / 4e6
    );
}

#[test]
fn hint_field_wire_roundtrip_preserves_movement_through_table() {
    // Focused wire-path check: device says moving → bytes → table.
    let profile = MotionProfile::walking(SimDuration::from_secs(5), 1.4, 0.0);
    let mut dev = HintedDevice::new(profile, 7);
    dev.advance_to(SimTime::from_secs(3));
    assert!(dev.hints().is_moving());

    let bytes = dev.outgoing_hint_field().tlv.expect("tlv").encode();
    let mut table: NeighborHints<u32> = NeighborHints::new();
    table.on_frame(
        42,
        SimTime::from_secs(3),
        &HintField::with_tlv(HintWire::decode(bytes).expect("valid")),
    );
    assert!(table.is_moving(42));
}

#[test]
fn legacy_receiver_leaves_sender_in_static_mode() {
    // A hint-oblivious receiver sends plain frames; the hint-aware sender
    // must behave exactly like SampleRate (coexistence, Sec. 2.3).
    let mut ha = HintAware::new();
    let mut table: NeighborHints<u8> = NeighborHints::new();
    for i in 0..100u64 {
        let now = SimTime::from_micros(i * 220);
        table.on_frame(1, now, &HintField::legacy());
        ha.report_movement_hint(now, table.is_moving(1));
        let r = ha.pick_rate(now);
        ha.report(now, r, true);
    }
    assert_eq!(ha.active_name(), "SampleRate");
}

#[test]
fn rate_selection_uses_80211a_rates_only() {
    // Sanity across the whole stack: every rate an adapter can pick maps
    // to a legal 802.11a OFDM rate with consistent airtime.
    let timing = MacTiming::ieee80211a();
    for &r in &BitRate::ALL {
        let air = timing.exchange_airtime(r, 1000);
        assert!(air.as_micros() > 0);
        assert!(air.as_micros() < 2_500, "{r} airtime {air}");
    }
}
