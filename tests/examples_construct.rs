//! Every example under `examples/` must at least construct its scenario.
//!
//! The examples are the first thing a new reader runs, and nothing else in
//! the test suite exercises their exact entry points — an API rename could
//! silently break them between CI runs of `cargo build --examples`. Each
//! test here mirrors one example's setup code (scaled down where the
//! example simulates minutes of traffic) and asserts the scenario produces
//! sane output. The examples themselves are also compiled by CI via
//! `cargo test`, which builds example targets.

use sensor_hints::ap::association::{choose_ap, ApCandidate, AssociationPolicy, ClientMotion};
use sensor_hints::ap::disassociation::{fig_5_1_scenario, DisassociationPolicy, FairnessModel};
use sensor_hints::ap::scheduler::{simulate_two_client_schedule, SchedulePolicy};
use sensor_hints::device::HintedDevice;
use sensor_hints::mac::BitRate;
use sensor_hints::rateadapt::evaluate::ProtocolKind;
use sensor_hints::rateadapt::scenario::{EnvironmentSpec, MotionSpec, ScenarioBuilder};
use sensor_hints::rateadapt::Workload;
use sensor_hints::sensors::gps::Position;
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::{RngStream, SimDuration, SimTime};
use sensor_hints::topology::adaptive::AdaptiveProber;
use sensor_hints::topology::delivery::actual_series;
use sensor_hints::topology::ProbeStream;
use sensor_hints::vehicular::links::{collect_links, table_5_1};
use sensor_hints::vehicular::mobility::Fleet;
use sensor_hints::vehicular::roads::RoadNetwork;

/// `examples/quickstart.rs`: device pipeline from profile to hint field.
#[test]
fn quickstart_scenario_constructs() {
    let profile = MotionProfile::static_move_static(
        SimDuration::from_secs(5),
        SimDuration::from_secs(5),
        SimDuration::from_secs(5),
    );
    let mut phone = HintedDevice::new(profile, 2026);
    phone.advance_to(SimTime::from_secs(7));
    assert!(phone.hints().is_moving(), "mid-walk the hint must be up");
    assert_eq!(phone.outgoing_hint_field().movement_hint(), Some(true));
}

/// `examples/supermarket.rs`: every protocol simulates the shopper's
/// mixed-mobility TCP session through one compiled scenario.
#[test]
fn supermarket_scenario_constructs() {
    let scenario = ScenarioBuilder::new()
        .motion_sized(MotionSpec::Alternating {
            each: SimDuration::from_secs(2),
            n_pairs: 2,
        })
        .seed(1)
        .workload(Workload::tcp())
        .sensor_hints_seeded(1 ^ 0xA15)
        .build()
        .expect("valid supermarket scenario");
    let duration = scenario.spec().duration;
    for kind in ProtocolKind::ALL {
        let mut adapter = kind.build(SimDuration::from_secs(10));
        let r = scenario.run_with(adapter.as_mut());
        assert!(
            r.attempts > 0,
            "{} attempted nothing over {duration}",
            kind.name()
        );
    }
}

/// `examples/mesh_probing.rs`: probing strategies over one mesh-edge
/// scenario's trace and hint stream.
#[test]
fn mesh_probing_scenario_constructs() {
    let scenario = ScenarioBuilder::new()
        .environment(EnvironmentSpec::MeshEdge)
        .motion_sized(MotionSpec::Alternating {
            each: SimDuration::from_secs(5),
            n_pairs: 2,
        })
        .seed(99)
        .sensor_hints_seeded(0x99)
        .build()
        .expect("valid mesh-probing scenario");
    let stream = ProbeStream::from_trace(scenario.trace(), BitRate::R6, 99);
    let hints = scenario.hints().expect("sensor hints configured");
    let actual = actual_series(&stream);
    assert!(!actual.is_empty(), "delivery series must be non-empty");
    let run = AdaptiveProber::new().run(&stream, |t| hints.query(t));
    assert!(run.probes_sent > 0);
    assert!(!run.estimates.is_empty());
}

/// `examples/ap_handoff.rs`: association, scheduling, and disassociation.
#[test]
fn ap_handoff_scenario_constructs() {
    let behind = ApCandidate {
        id: 0,
        position: Position { x: -20.0, y: 0.0 },
        rssi_dbm: -45.0,
        coverage_m: 100.0,
    };
    let ahead = ApCandidate {
        id: 1,
        position: Position { x: 80.0, y: 0.0 },
        rssi_dbm: -55.0,
        coverage_m: 100.0,
    };
    let client = ClientMotion {
        position: Position { x: 0.0, y: 0.0 },
        moving: true,
        heading_deg: 90.0,
        speed_mps: 1.4,
    };
    for policy in [
        AssociationPolicy::StrongestSignal,
        AssociationPolicy::HintAware,
    ] {
        choose_ap(&[behind, ahead], &client, policy).expect("an AP in range");
    }

    let out =
        simulate_two_client_schedule(SchedulePolicy::EqualShare, BitRate::R54, 2_000, 10.0, 60.0);
    assert!(out.aggregate() > 0);

    let scenario = fig_5_1_scenario(
        DisassociationPolicy::Timeout {
            prune_after: SimDuration::from_secs(10),
        },
        FairnessModel::FrameLevel,
    );
    assert!(scenario.mean_goodput_mbps(0, 5, 30) > 0.0);
}

/// `examples/vehicular_mesh.rs`: road network, fleet, link statistics.
#[test]
fn vehicular_mesh_scenario_constructs() {
    let root = RngStream::new(51);
    let mut net_rng = root.derive("net");
    let network = RoadNetwork::generate(6, 2000.0, &mut net_rng);
    let fleet = Fleet::new(network, 20, root.derive("fleet"));
    let snaps = fleet.simulate(60);
    assert_eq!(snaps.len(), 60 + 1, "one snapshot per second plus t=0");
    let records = collect_links(&snaps);
    let (_medians, _all_median, counts) = table_5_1(&records);
    assert_eq!(
        counts.iter().sum::<usize>(),
        records.len(),
        "every link lands in exactly one heading bucket"
    );
}
