//! `scenario_run` CLI contract: valid specs (single-link and fleet) exit
//! 0; malformed or invalid specs exit 2 with an actionable message on
//! stderr; missing files are environment failures (exit 1).

use sensor_hints::rateadapt::fleet::{FleetOutcome, FleetSpec};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scenario_run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scenario_run"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("scenario_run executes")
}

fn checked_in_fleet() -> FleetSpec {
    FleetSpec::load(&Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/fleet_office_walk.json"))
        .expect("checked-in fleet spec loads")
}

fn save_temp(name: &str, spec: &FleetSpec) -> PathBuf {
    let path = std::env::temp_dir().join(format!("scenario_run_cli_{name}"));
    spec.save(&path).expect("temp spec written");
    path
}

#[test]
fn checked_in_specs_run_cleanly() {
    for spec in [
        "scenarios/mixed_office_tcp.json",
        "scenarios/vehicular_udp.json",
        "scenarios/fleet_office_walk.json",
    ] {
        let out = scenario_run(&[spec]);
        assert!(out.status.success(), "{spec}: {out:?}");
    }
    // --json emits a parseable fleet outcome.
    let out = scenario_run(&["scenarios/fleet_office_walk.json", "--json"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    let outcome = FleetOutcome::from_json(&text).expect("fleet outcome parses");
    assert_eq!(outcome.policy, "hint-etx");
    assert!(outcome.total_handoffs >= 2);
}

#[test]
fn malformed_fleet_specs_exit_two_with_actionable_stderr() {
    let mut zero_clients = checked_in_fleet();
    zero_clients.clients.clear();
    let path = save_temp("zero_clients.json", &zero_clients);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("at least one client"), "{err}");

    let mut bad_policy = checked_in_fleet();
    bad_policy.handoff.policy = "teleport".into();
    let path = save_temp("bad_policy.json", &bad_policy);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown handoff policy `teleport`"), "{err}");
    assert!(err.contains("strongest-signal"), "must list names: {err}");

    let mut oob_ap = checked_in_fleet();
    oob_ap.aps[1].x_m = 960.0;
    let path = save_temp("oob_ap.json", &oob_ap);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("outside the environment bounds"), "{err}");

    // Unparseable JSON with a clients field still routes to the fleet
    // parser and exits 2.
    let garbage = std::env::temp_dir().join("scenario_run_cli_garbage.json");
    std::fs::write(&garbage, "{\"clients\": [not json").expect("temp file");
    let out = scenario_run(&[garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_is_an_environment_failure() {
    let out = scenario_run(&["/nonexistent/fleet.json"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn single_link_spec_with_clients_in_a_string_value_is_not_misrouted() {
    // A custom environment whose *name* is "clients": dispatch must key
    // off the parsed schema, not a substring of the file.
    use sensor_hints::channel::Environment;
    use sensor_hints::rateadapt::scenario::{EnvironmentSpec, ScenarioBuilder};
    use sensor_hints::sim::SimDuration;
    let mut env = Environment::office();
    env.name = "clients".to_string();
    let spec = ScenarioBuilder::new()
        .environment(EnvironmentSpec::Custom(env))
        .duration(SimDuration::from_secs(2))
        .seed(1)
        .into_spec();
    let path = std::env::temp_dir().join("scenario_run_cli_clients_env.json");
    spec.save(&path).expect("temp spec written");
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("environment : clients"), "{stdout}");
}
