//! `scenario_run` CLI contract: valid specs (single-link and fleet) exit
//! 0; malformed or invalid specs exit 2 with an actionable message on
//! stderr; missing files are environment failures (exit 1).

use sensor_hints::rateadapt::fleet::{FleetOutcome, FleetSpec};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scenario_run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scenario_run"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("scenario_run executes")
}

fn checked_in_fleet() -> FleetSpec {
    FleetSpec::load(&Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/fleet_office_walk.json"))
        .expect("checked-in fleet spec loads")
}

fn save_temp(name: &str, spec: &FleetSpec) -> PathBuf {
    let path = std::env::temp_dir().join(format!("scenario_run_cli_{name}"));
    spec.save(&path).expect("temp spec written");
    path
}

#[test]
fn checked_in_specs_run_cleanly() {
    for spec in [
        "scenarios/mixed_office_tcp.json",
        "scenarios/vehicular_udp.json",
        "scenarios/fleet_office_walk.json",
    ] {
        let out = scenario_run(&[spec]);
        assert!(out.status.success(), "{spec}: {out:?}");
    }
    // --json emits a parseable fleet outcome.
    let out = scenario_run(&["scenarios/fleet_office_walk.json", "--json"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    let outcome = FleetOutcome::from_json(&text).expect("fleet outcome parses");
    assert_eq!(outcome.policy, "hint-etx");
    assert!(outcome.total_handoffs >= 2);
}

#[test]
fn malformed_fleet_specs_exit_two_with_actionable_stderr() {
    let mut zero_clients = checked_in_fleet();
    zero_clients.clients.clear();
    let path = save_temp("zero_clients.json", &zero_clients);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("at least one client"), "{err}");

    let mut bad_policy = checked_in_fleet();
    bad_policy.handoff.policy = "teleport".into();
    let path = save_temp("bad_policy.json", &bad_policy);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown handoff policy `teleport`"), "{err}");
    assert!(err.contains("strongest-signal"), "must list names: {err}");

    let mut oob_ap = checked_in_fleet();
    oob_ap.aps[1].x_m = 960.0;
    let path = save_temp("oob_ap.json", &oob_ap);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("outside the environment bounds"), "{err}");

    // Unparseable JSON with a clients field still routes to the fleet
    // parser and exits 2.
    let garbage = std::env::temp_dir().join("scenario_run_cli_garbage.json");
    std::fs::write(&garbage, "{\"clients\": [not json").expect("temp file");
    let out = scenario_run(&[garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn malformed_medium_specs_exit_two_with_actionable_stderr() {
    use sensor_hints::rateadapt::fleet::MediumSpec;
    use sensor_hints::sim::SimDuration;

    // Zero slot time: backoff could never elapse.
    let mut zero_slot = checked_in_fleet();
    zero_slot.medium = MediumSpec {
        slot: SimDuration::ZERO,
        ..MediumSpec::shared()
    };
    let path = save_temp("zero_slot.json", &zero_slot);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("slot time must be positive"), "{err}");

    // Inverted backoff window: min above max.
    let mut inverted_cw = checked_in_fleet();
    inverted_cw.medium = MediumSpec {
        cw_min: 255,
        cw_max: 31,
        ..MediumSpec::shared()
    };
    let path = save_temp("inverted_cw.json", &inverted_cw);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("backoff window min 255 exceeds max 31"),
        "{err}"
    );

    // Unknown contention mode: message lists the valid names.
    let mut bad_mode = checked_in_fleet();
    bad_mode.medium = MediumSpec {
        contention: "telepathic".into(),
        ..MediumSpec::shared()
    };
    let path = save_temp("bad_mode.json", &bad_mode);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("telepathic"), "{err}");
    assert!(err.contains("isolated"), "must list modes: {err}");
    assert!(err.contains("shared"), "must list modes: {err}");

    // Zero scheduling epoch.
    let mut zero_epoch = checked_in_fleet();
    zero_epoch.medium = MediumSpec {
        epoch: SimDuration::ZERO,
        ..MediumSpec::shared()
    };
    let path = save_temp("zero_epoch.json", &zero_epoch);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("epoch must be positive"), "{err}");
}

#[test]
fn contended_spec_runs_cleanly_and_reports_contention() {
    let out = scenario_run(&["scenarios/fleet_contended_office.json"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("contention"), "{stdout}");
    let out = scenario_run(&["scenarios/fleet_contended_office.json", "--json"]);
    assert!(out.status.success());
    let outcome = FleetOutcome::from_json(&String::from_utf8_lossy(&out.stdout))
        .expect("fleet outcome parses");
    assert_eq!(outcome.contention, "shared");
    assert!(outcome.aps[0].contended_busy_s > 0.0);
}

#[test]
fn sharded_fleet_json_is_byte_identical_and_metro_runs() {
    // The --jobs byte-identity contract through the CLI: the checked-in
    // metro spec prints the same JSON at any worker count.
    let j1 = scenario_run(&["scenarios/fleet_metro.json", "--json", "--jobs", "1"]);
    assert!(j1.status.success(), "{j1:?}");
    let j4 = scenario_run(&["scenarios/fleet_metro.json", "--json", "--jobs", "4"]);
    assert!(j4.status.success(), "{j4:?}");
    assert!(
        j1.stdout == j4.stdout,
        "--jobs 1 ({} bytes) and --jobs 4 ({} bytes) diverged",
        j1.stdout.len(),
        j4.stdout.len()
    );
    let outcome =
        FleetOutcome::from_json(&String::from_utf8_lossy(&j1.stdout)).expect("outcome parses");
    assert_eq!(outcome.clients.len(), 224);
    assert_eq!(outcome.aps.len(), 32);
    // The human-readable summary works too.
    let human = scenario_run(&["scenarios/fleet_metro.json", "--jobs", "2"]);
    assert!(human.status.success(), "{human:?}");
    let stdout = String::from_utf8_lossy(&human.stdout);
    assert!(stdout.contains("224 clients x 32 APs"), "{stdout}");
}

#[test]
fn bad_jobs_values_exit_two() {
    for args in [
        &["scenarios/fleet_metro.json", "--jobs", "0"][..],
        &["scenarios/fleet_metro.json", "--jobs", "many"][..],
        &["scenarios/fleet_metro.json", "--jobs"][..],
    ] {
        let out = scenario_run(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--jobs"), "{err}");
    }
}

#[test]
fn missing_file_is_an_environment_failure() {
    let out = scenario_run(&["/nonexistent/fleet.json"]);
    assert_eq!(out.status.code(), Some(1));
    // --validate keeps the same exit-code split: a missing file is an
    // environment failure, not a spec error.
    let out = scenario_run(&["/nonexistent/fleet.json", "--validate"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn validate_flag_checks_specs_without_simulating() {
    // Valid specs of both families: exit 0 and a confirmation, no
    // simulation output.
    let out = scenario_run(&["scenarios/mixed_office_tcp.json", "--validate"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid single-link spec"), "{stdout}");
    assert!(!stdout.contains("goodput"), "must not simulate: {stdout}");

    let out = scenario_run(&["scenarios/fleet_office_walk.json", "--validate"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid fleet spec"), "{stdout}");
    assert!(!stdout.contains("handoffs"), "must not simulate: {stdout}");

    // Invalid specs of both families: exit 2 with the validator's
    // actionable message on stderr.
    let mut bad_fleet = checked_in_fleet();
    bad_fleet.handoff.policy = "teleport".into();
    let path = save_temp("validate_bad_policy.json", &bad_fleet);
    let out = scenario_run(&[path.to_str().unwrap(), "--validate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown handoff policy"), "{err}");

    let garbage = std::env::temp_dir().join("scenario_run_cli_validate_garbage.json");
    std::fs::write(&garbage, "{\"motion\": [").expect("temp file");
    let out = scenario_run(&[garbage.to_str().unwrap(), "--validate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // --help documents the exit codes.
    let help = scenario_run(&["--help"]);
    assert!(help.status.success());
    let text = String::from_utf8_lossy(&help.stdout);
    assert!(text.contains("--validate"), "{text}");
    assert!(text.contains("exit codes"), "{text}");
}

#[test]
fn bad_fault_schedules_exit_two_with_actionable_stderr() {
    use sensor_hints::rateadapt::fleet::ApOutage;
    use sensor_hints::sim::SimDuration;

    // An outage naming an AP the fleet does not have: exit 2 both when
    // running and when validating.
    let mut oob = checked_in_fleet();
    oob.faults.ap_outages.push(ApOutage {
        ap: 99,
        start: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(2),
    });
    let path = save_temp("fault_oob_ap.json", &oob);
    for extra in [&[][..], &["--validate"][..]] {
        let mut args = vec![path.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = scenario_run(&args);
        assert_eq!(out.status.code(), Some(2), "{extra:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("ap_outages[0]"), "{err}");
        assert!(err.contains("99"), "{err}");
    }

    // A zero-duration window names the offending entry too.
    let mut zero = checked_in_fleet();
    zero.faults.ap_outages.push(ApOutage {
        ap: 0,
        start: SimDuration::from_secs(1),
        duration: SimDuration::ZERO,
    });
    let path = save_temp("fault_zero_window.json", &zero);
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("zero duration"), "{err}");
}

#[test]
fn single_link_spec_with_clients_in_a_string_value_is_not_misrouted() {
    // A custom environment whose *name* is "clients": dispatch must key
    // off the parsed schema, not a substring of the file.
    use sensor_hints::channel::Environment;
    use sensor_hints::rateadapt::scenario::{EnvironmentSpec, ScenarioBuilder};
    use sensor_hints::sim::SimDuration;
    let mut env = Environment::office();
    env.name = "clients".to_string();
    let spec = ScenarioBuilder::new()
        .environment(EnvironmentSpec::Custom(env))
        .duration(SimDuration::from_secs(2))
        .seed(1)
        .into_spec();
    let path = std::env::temp_dir().join("scenario_run_cli_clients_env.json");
    spec.save(&path).expect("temp spec written");
    let out = scenario_run(&[path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("environment : clients"), "{stdout}");
}

#[test]
fn record_with_validate_is_a_flag_conflict() {
    // --validate never simulates, so --record has no trace to write;
    // the old behaviour silently dropped --record. Now: exit 2,
    // actionable message, and no file left behind.
    let out_path = std::env::temp_dir().join("scenario_run_cli_conflict.trace");
    let _ = std::fs::remove_file(&out_path);
    let out = scenario_run(&[
        "scenarios/mixed_office_tcp.json",
        "--validate",
        "--record",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mutually exclusive"), "{err}");
    assert!(err.contains("drop one of the two flags"), "{err}");
    assert!(!out_path.exists(), "conflicting flags must not write files");
}

#[test]
fn uncreatable_record_path_exits_two_before_the_run() {
    // A path whose parent directory does not exist cannot be created no
    // matter the privileges; the pre-flight check turns it into a user
    // error (exit 2) instead of a post-simulation environment failure.
    let bad = "/nonexistent-scenario-run-dir/out.trace";
    let out = scenario_run(&["scenarios/mixed_office_tcp.json", "--record", bad]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot create --record path"), "{err}");
    assert!(err.contains("directory exists and is writable"), "{err}");
}
