//! `scenario_run` — execute a JSON [`ScenarioSpec`] file from the command
//! line.
//!
//! The spec file is the whole experiment: environment × motion × duration
//! × seed × workload × protocol-by-name × hint configuration. New
//! scenarios therefore need zero new Rust — write a JSON file and run it:
//!
//! ```text
//! scenario_run scenarios/mixed_office_tcp.json
//! scenario_run scenarios/vehicular_udp.json --json
//! ```
//!
//! Spec-driven runs are bit-identical to the equivalent hand-coded
//! builder runs (same seeds ⇒ same `SimResult`); the schema is documented
//! in EXPERIMENTS.md ("Scenario spec files").

use sensor_hints::mac::BitRate;
use sensor_hints::rateadapt::scenario::ScenarioSpec;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: scenario_run <spec.json> [--json]\n\
       <spec.json>  a ScenarioSpec file (schema: EXPERIMENTS.md)\n\
       --json       print the full ScenarioOutcome as JSON instead of\n\
                    the human-readable summary";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut json = false;
    for arg in &args {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("scenario_run: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("scenario_run: missing spec file\n{USAGE}");
        return ExitCode::from(2);
    };

    let spec = match ScenarioSpec::load(Path::new(path)) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("scenario_run: cannot load {path}: {e}");
            // Malformed spec content is the same user-error class as a
            // spec that fails validation: exit 2. Everything else
            // (missing file, permissions) is an environment failure.
            return if e.kind() == std::io::ErrorKind::InvalidData {
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            };
        }
    };
    let scenario = match spec.compile() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario_run: invalid spec {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = scenario.run();

    if json {
        println!("{}", outcome.to_json_pretty());
        return ExitCode::SUCCESS;
    }

    println!("scenario    : {path}");
    println!("environment : {}", outcome.environment);
    println!("protocol    : {}", outcome.protocol);
    println!("workload    : {:?}", spec.workload);
    println!("duration    : {}", spec.duration);
    println!("seed        : {}", spec.seed);
    println!();
    let r = &outcome.result;
    println!("goodput     : {:.2} Mbit/s", outcome.goodput_mbps());
    println!(
        "delivery    : {}/{} packets ({:.1}% of {} attempts)",
        r.packets_delivered,
        r.packets_sent,
        100.0 * outcome.delivery_ratio(),
        r.attempts
    );
    println!("rate usage  :");
    for &rate in &BitRate::ALL {
        let n = r.rate_usage[rate.index()];
        if n > 0 {
            println!("  {:>7}: {n}", rate.to_string());
        }
    }
    let series = &r.delivered_per_second;
    if !series.is_empty() {
        let max = *series.iter().max().unwrap_or(&1) as f64;
        println!("delivered/s :");
        for (sec, &n) in series.iter().enumerate() {
            let filled = if max > 0.0 {
                ((n as f64 / max) * 40.0).round() as usize
            } else {
                0
            };
            println!(
                "  {sec:>4}  {n:>6}  |{}{}|",
                "#".repeat(filled),
                " ".repeat(40 - filled)
            );
        }
    }
    ExitCode::SUCCESS
}
