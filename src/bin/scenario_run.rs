//! `scenario_run` — execute a JSON [`ScenarioSpec`] or [`FleetSpec`]
//! file from the command line.
//!
//! The spec file is the whole experiment. A single-link spec is
//! environment × motion × duration × seed × workload × protocol-by-name
//! × hint configuration; a **fleet** spec (any JSON object with a
//! `clients` field) adds AP placement, per-client motion/workload, and a
//! handoff policy by name, and runs N clients against M APs through the
//! fleet engine. New scenarios therefore need zero new Rust — write a
//! JSON file and run it:
//!
//! ```text
//! scenario_run scenarios/mixed_office_tcp.json
//! scenario_run scenarios/vehicular_udp.json --json
//! scenario_run scenarios/fleet_office_walk.json
//! ```
//!
//! Spec-driven runs are bit-identical to the equivalent hand-coded
//! builder runs (same seeds ⇒ same results); the schemas are documented
//! in EXPERIMENTS.md ("Scenario spec files" and "Fleet spec files").

use sensor_hints::fleet::FleetScenario;
use sensor_hints::mac::BitRate;
use sensor_hints::rateadapt::fleet::FleetSpec;
use sensor_hints::rateadapt::protocols::registry::ProtocolRegistry;
use sensor_hints::rateadapt::scenario::ScenarioSpec;
use std::process::ExitCode;

const USAGE: &str =
    "usage: scenario_run <spec.json> [--json] [--jobs N] [--validate] [--record PATH]\n\
       <spec.json>  a ScenarioSpec or FleetSpec file (schema: EXPERIMENTS.md);\n\
                    a spec with a `clients` field runs as a fleet\n\
       --json       print the full outcome as JSON instead of the\n\
                    human-readable summary\n\
       --jobs N     shard a fleet's span simulations over N worker\n\
                    threads (N >= 1; output is byte-identical to serial)\n\
       --validate   parse and validate the spec, then exit without\n\
                    simulating anything (mutually exclusive with\n\
                    --record: a validation-only run produces no trace)\n\
       --record PATH\n\
                    (single-link specs) also write the run's delivered-\n\
                    packet trace to PATH — text `time_us,direction,size`\n\
                    lines, or the compact binary form when PATH ends in\n\
                    .bin. The file replays via a Trace workload\n\
                    (EXPERIMENTS.md, \"Trace workloads\"). The path is\n\
                    checked before the run: an uncreatable file is a\n\
                    user error (exit 2), not a post-run surprise\n\
\n\
exit codes:\n\
       0  success (the run finished, or --validate accepted the spec)\n\
       1  environment failure (e.g. the spec file cannot be read, or\n\
          the --record file fails mid-write)\n\
       2  user error (bad arguments, conflicting flags, malformed\n\
          JSON, a spec that fails validation, or a --record path that\n\
          cannot be created)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut jobs: usize = 1;
    let mut validate = false;
    let mut record: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--validate" => validate = true,
            "--jobs" => {
                jobs = match iter.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => {
                        eprintln!("scenario_run: --jobs needs an integer >= 1\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--record" => {
                record = match iter.next() {
                    Some(p) if !p.is_empty() => Some(p.as_str()),
                    _ => {
                        eprintln!("scenario_run: --record needs an output path\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("scenario_run: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("scenario_run: missing spec file\n{USAGE}");
        return ExitCode::from(2);
    };
    if validate && record.is_some() {
        // Silently ignoring --record here (the old behaviour) hid the
        // flag conflict until the user went looking for the trace file.
        eprintln!(
            "scenario_run: --record and --validate are mutually exclusive \
             (--validate never simulates, so there is no trace to record); \
             drop one of the two flags\n{USAGE}"
        );
        return ExitCode::from(2);
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scenario_run: cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Dispatch by parsing: the two schemas are disjoint (a fleet spec
    // has no `motion`/`workload` at top level, a single-link spec has no
    // `clients`), so whichever parses is the kind the file is. When
    // neither parses, report the error for the family the file most
    // resembles — the `clients` key only appears as a field name in
    // fleet specs.
    let spec = match ScenarioSpec::from_json(&text) {
        Ok(spec) => spec,
        Err(single_err) => {
            match FleetSpec::from_json(&text) {
                Ok(mut fleet_spec) => {
                    if record.is_some() {
                        eprintln!(
                            "scenario_run: --record only applies to single-link specs \
                             (a fleet run has no single delivered-packet schedule)\n{USAGE}"
                        );
                        return ExitCode::from(2);
                    }
                    rebase_fleet_traces(path, &mut fleet_spec);
                    if validate {
                        return validate_fleet(path, &fleet_spec);
                    }
                    return run_fleet(path, fleet_spec, json, jobs);
                }
                Err(fleet_err) => {
                    // Malformed spec content is the same user-error
                    // class as a spec that fails validation: exit 2.
                    let e: &dyn std::fmt::Display = if text.contains("\"clients\"") {
                        &fleet_err
                    } else {
                        &single_err
                    };
                    eprintln!("scenario_run: cannot load {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    // A relative trace-workload path resolves against the spec file's
    // directory (matching `ScenarioSpec::load`), so specs run from any
    // working directory.
    let mut spec = spec;
    if let Some(dir) = std::path::Path::new(path).parent() {
        spec.workload.rebase(dir);
    }
    if validate {
        // Validation only (cheap: no trace generation, no simulation).
        return match spec.validate(ProtocolRegistry::builtin_shared()) {
            Ok(()) => {
                println!("scenario_run: {path}: valid single-link spec");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("scenario_run: invalid spec {path}: {e}");
                ExitCode::from(2)
            }
        };
    }
    let scenario = match spec.compile() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario_run: invalid spec {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out_path) = record {
        // Pre-flight the record path so a doomed destination fails now
        // (user error, exit 2), not after the whole simulation has run.
        // `PacketTrace::save` truncates on success, so the placeholder
        // file created here is simply overwritten.
        if let Err(e) = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(out_path)
        {
            eprintln!(
                "scenario_run: cannot create --record path {out_path}: {e} \
                 (check the directory exists and is writable)\n{USAGE}"
            );
            return ExitCode::from(2);
        }
    }
    let (outcome, recorded) = match record {
        None => (scenario.run(), None),
        Some(out_path) => {
            // Recording is observation-only: the outcome is identical to
            // an unrecorded run of the same spec.
            let (outcome, trace) = scenario.run_recording();
            if let Err(e) = trace.save(std::path::Path::new(out_path)) {
                eprintln!("scenario_run: cannot write trace {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            (outcome, Some((out_path, trace)))
        }
    };

    if json {
        println!("{}", outcome.to_json_pretty());
        return ExitCode::SUCCESS;
    }

    println!("scenario    : {path}");
    println!("environment : {}", outcome.environment);
    println!("protocol    : {}", outcome.protocol);
    println!("workload    : {}", spec.workload.summary());
    println!("duration    : {}", spec.duration);
    println!("seed        : {}", spec.seed);
    if let Some((out_path, trace)) = &recorded {
        println!(
            "recorded    : {out_path} ({} packets; replay with a \
             {{\"Trace\":{{\"Path\":...}}}} workload)",
            trace.len()
        );
    }
    println!();
    let r = &outcome.result;
    println!("goodput     : {:.2} Mbit/s", outcome.goodput_mbps());
    println!(
        "delivery    : {}/{} packets ({:.1}% of {} attempts)",
        r.packets_delivered,
        r.packets_sent,
        100.0 * outcome.delivery_ratio(),
        r.attempts
    );
    println!("rate usage  :");
    for &rate in &BitRate::ALL {
        let n = r.rate_usage[rate.index()];
        if n > 0 {
            println!("  {:>7}: {n}", rate.to_string());
        }
    }
    let series = &r.delivered_per_second;
    if !series.is_empty() {
        let max = *series.iter().max().unwrap_or(&1) as f64;
        println!("delivered/s :");
        for (sec, &n) in series.iter().enumerate() {
            let filled = if max > 0.0 {
                ((n as f64 / max) * 40.0).round() as usize
            } else {
                0
            };
            println!(
                "  {sec:>4}  {n:>6}  |{}{}|",
                "#".repeat(filled),
                " ".repeat(40 - filled)
            );
        }
    }
    ExitCode::SUCCESS
}

/// Rebase each client's relative trace-workload path against the spec
/// file's directory (matching `FleetSpec::load`).
fn rebase_fleet_traces(path: &str, spec: &mut FleetSpec) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        for client in &mut spec.clients {
            client.workload.rebase(dir);
        }
    }
}

/// Validate an already-parsed fleet spec without compiling or running
/// it (`--validate`): exit 0 on a valid spec, 2 otherwise.
fn validate_fleet(path: &str, spec: &FleetSpec) -> ExitCode {
    match spec.validate() {
        Ok(()) => {
            println!(
                "scenario_run: {path}: valid fleet spec ({} clients x {} APs)",
                spec.clients.len(),
                spec.aps.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scenario_run: invalid spec {path}: {e}");
            ExitCode::from(2)
        }
    }
}

/// Compile, run and print an already-parsed fleet spec. `jobs` worker
/// threads shard the span simulations; any value prints the identical
/// outcome (the engine's byte-identity contract).
fn run_fleet(path: &str, spec: FleetSpec, json: bool, jobs: usize) -> ExitCode {
    let fleet = match FleetScenario::compile(&spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("scenario_run: invalid spec {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = fleet.run_with_jobs(jobs);

    if json {
        println!("{}", outcome.to_json_pretty());
        return ExitCode::SUCCESS;
    }

    println!("fleet       : {path}");
    println!("environment : {}", outcome.environment);
    println!("protocol    : {}", outcome.protocol);
    println!("policy      : {}", outcome.policy);
    if outcome.contention != "isolated" {
        println!("contention  : {} medium", outcome.contention);
    }
    println!("duration    : {}", spec.duration);
    println!("seed        : {}", spec.seed);
    println!(
        "fleet       : {} clients x {} APs on {} x {} m",
        spec.clients.len(),
        spec.aps.len(),
        spec.bounds.width_m,
        spec.bounds.height_m
    );
    println!();
    println!(
        "handoffs    : {} total, {} forced (coverage loss)",
        outcome.total_handoffs, outcome.forced_handoffs
    );
    let down_s: f64 = outcome.aps.iter().map(|a| a.down_s).sum();
    let evictions: u32 = outcome.aps.iter().map(|a| a.evictions).sum();
    let fallback_s: f64 = outcome.clients.iter().map(|c| c.fallback_s).sum();
    if down_s > 0.0 || evictions > 0 || fallback_s > 0.0 {
        println!(
            "faults      : {down_s:.1} s AP downtime, {evictions} evictions, {fallback_s:.1} s hint fallback"
        );
    }
    println!(
        "aggregate   : {:.2} Mbit/s, Jain fairness {:.3}",
        outcome.aggregate_goodput_mbps, outcome.jain_fairness
    );
    println!();
    println!("clients:");
    for c in &outcome.clients {
        let aps: Vec<String> = c.aps_visited.iter().map(|a| format!("AP{a}")).collect();
        println!(
            "  {:>3}  {:>7.2} Mbit/s  {:>2} handoffs ({} forced)  outage {:>8}  path {}",
            c.client,
            c.outcome.goodput_mbps(),
            c.handoffs,
            c.forced_handoffs,
            c.outage.to_string(),
            if aps.is_empty() {
                "(never associated)".to_string()
            } else {
                aps.join(" -> ")
            }
        );
    }
    println!();
    println!("aps:");
    for (i, ap) in outcome.aps.iter().enumerate() {
        let contended = if outcome.contention == "isolated" {
            String::new()
        } else {
            format!(
                "  {:>6.2} s granted  {:>5.2} s in {} collisions",
                ap.contended_busy_s, ap.collision_s, ap.collisions
            )
        };
        println!(
            "  AP{i}  {:>7.1} client-s associated  {:>2} handoffs in  {:>6.2} s ghost airtime{contended}",
            ap.association_s, ap.handoffs_in, ap.wasted_airtime_s
        );
    }
    ExitCode::SUCCESS
}
