//! `hints-trace` — generate, inspect and replay channel traces.
//!
//! The paper's methodology revolves around trace artifacts; this tool
//! makes them first-class on the command line:
//!
//! ```text
//! hints-trace gen --env office --motion mixed --secs 20 --seed 7 --out t.json
//! hints-trace info t.json
//! hints-trace replay t.json --protocol hintaware --workload tcp
//! hints-trace compare t.json                     # all six protocols
//! ```
//!
//! Run via `cargo run --release --bin hints-trace -- <args>`.

use sensor_hints::channel::{Environment, Trace};
use sensor_hints::mac::BitRate;
use sensor_hints::rateadapt::evaluate::ProtocolKind;
use sensor_hints::rateadapt::{HintStream, LinkSimulator, Workload};
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::SimDuration;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hints-trace gen --env <office|hallway|outdoor|vehicular|mesh-edge> \\\n            --motion <static|mobile|mixed|vehicle> --secs <n> --seed <n> --out <file>\n  hints-trace info <file>\n  hints-trace replay <file> --protocol <name> [--workload udp|tcp]\n  hints-trace compare <file> [--workload udp|tcp]"
    );
    ExitCode::from(2)
}

/// Pull `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn env_by_name(name: &str) -> Option<Environment> {
    match name {
        "office" => Some(Environment::office()),
        "hallway" => Some(Environment::hallway()),
        "outdoor" => Some(Environment::outdoor()),
        "vehicular" => Some(Environment::vehicular()),
        "mesh-edge" => Some(Environment::mesh_edge()),
        _ => None,
    }
}

fn motion_by_name(name: &str, secs: u64) -> Option<MotionProfile> {
    let dur = SimDuration::from_secs(secs);
    match name {
        "static" => Some(MotionProfile::stationary(dur)),
        "mobile" => Some(MotionProfile::walking(dur, 1.4, 90.0)),
        "mixed" => Some(MotionProfile::half_and_half(
            SimDuration::from_secs(secs / 2),
            true,
        )),
        "vehicle" => Some(MotionProfile::vehicle(dur, 15.0, 0.0)),
        _ => None,
    }
}

fn protocol_by_name(name: &str) -> Option<ProtocolKind> {
    match name.to_ascii_lowercase().as_str() {
        "rapidsample" => Some(ProtocolKind::RapidSample),
        "samplerate" => Some(ProtocolKind::SampleRate),
        "rraa" => Some(ProtocolKind::Rraa),
        "rbar" => Some(ProtocolKind::Rbar),
        "charm" => Some(ProtocolKind::Charm),
        "hintaware" => Some(ProtocolKind::HintAware),
        _ => None,
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let (Some(env_s), Some(motion_s), Some(secs_s), Some(out)) = (
        flag(args, "--env"),
        flag(args, "--motion"),
        flag(args, "--secs"),
        flag(args, "--out"),
    ) else {
        return usage();
    };
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let Ok(secs) = secs_s.parse::<u64>() else {
        eprintln!("bad --secs {secs_s}");
        return ExitCode::from(2);
    };
    let Some(env) = env_by_name(&env_s) else {
        eprintln!("unknown environment {env_s}");
        return ExitCode::from(2);
    };
    let Some(profile) = motion_by_name(&motion_s, secs) else {
        eprintln!("unknown motion {motion_s}");
        return ExitCode::from(2);
    };
    let trace = Trace::generate(&env, &profile, SimDuration::from_secs(secs), seed);
    if let Err(e) = trace.save(Path::new(&out)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {} slots, env {}, seed {seed}",
        trace.len(),
        trace.environment
    );
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Trace, ExitCode> {
    Trace::load(Path::new(path)).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn cmd_info(path: &str) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    println!("environment : {}", trace.environment);
    println!("seed        : {}", trace.seed);
    println!("duration    : {}", trace.duration());
    println!("slots       : {}", trace.len());
    println!("noise loss  : {:.3}", trace.noise_loss);
    let moving = trace.slots.iter().filter(|s| s.moving).count();
    println!(
        "moving      : {:.0}% of slots",
        100.0 * moving as f64 / trace.len().max(1) as f64
    );
    println!("delivery ratio by rate (all / static slots / moving slots):");
    for &r in &BitRate::ALL {
        println!(
            "  {:>7}: {:.3} / {:.3} / {:.3}",
            r.to_string(),
            trace.delivery_ratio(r),
            trace.delivery_ratio_when(r, false),
            trace.delivery_ratio_when(r, true),
        );
    }
    ExitCode::SUCCESS
}

fn workload_of(args: &[String]) -> Workload {
    match flag(args, "--workload").as_deref() {
        Some("tcp") => Workload::tcp(),
        _ => Workload::Udp,
    }
}

/// Replay one protocol over a loaded trace, using ground-truth-with-
/// detector-latency hints derived from the trace's own movement flags.
fn replay(trace: &Trace, kind: ProtocolKind, workload: Workload) -> f64 {
    // Rebuild a hint stream from the trace's stored ground truth with a
    // 100 ms oracle latency (the detector's measured class).
    let profile = profile_from_trace(trace);
    let hints = HintStream::oracle(&profile, trace.duration(), SimDuration::from_millis(100));
    let mut adapter = kind.build(SimDuration::from_secs(10));
    LinkSimulator::new(trace)
        .with_hints(&hints)
        .run(adapter.as_mut(), workload)
        .goodput_bps
}

/// Reconstruct a piecewise motion profile from the trace's moving flags
/// (speed is not needed by the movement hint).
fn profile_from_trace(trace: &Trace) -> MotionProfile {
    use sensor_hints::sensors::motion::{MotionSegment, MotionState};
    let slot = sensor_hints::channel::SLOT_DURATION;
    let mut segs: Vec<MotionSegment> = Vec::new();
    for s in &trace.slots {
        let state = if s.moving {
            MotionState::Walking {
                speed_mps: s.speed_mps.max(0.1),
            }
        } else {
            MotionState::Static
        };
        match segs.last_mut() {
            Some(last) if last.state.is_moving() == s.moving => last.duration += slot,
            _ => segs.push(MotionSegment {
                state,
                duration: slot,
                heading_deg: 0.0,
            }),
        }
    }
    if segs.is_empty() {
        segs.push(MotionSegment {
            state: MotionState::Static,
            duration: slot,
            heading_deg: 0.0,
        });
    }
    MotionProfile::new(segs)
}

fn cmd_replay(path: &str, args: &[String]) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let Some(kind) = flag(args, "--protocol").and_then(|p| protocol_by_name(&p)) else {
        eprintln!("--protocol required (rapidsample|samplerate|rraa|rbar|charm|hintaware)");
        return ExitCode::from(2);
    };
    let goodput = replay(&trace, kind, workload_of(args));
    println!("{}: {:.2} Mbit/s", kind.name(), goodput / 1e6);
    ExitCode::SUCCESS
}

fn cmd_compare(path: &str, args: &[String]) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let workload = workload_of(args);
    println!("{:<12} {:>12}", "protocol", "Mbit/s");
    for kind in ProtocolKind::ALL {
        let goodput = replay(&trace, kind, workload);
        println!("{:<12} {:>12.2}", kind.name(), goodput / 1e6);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => match args.get(1) {
            Some(p) => cmd_info(p),
            None => usage(),
        },
        Some("replay") => match args.get(1) {
            Some(p) => cmd_replay(p.clone().as_str(), &args[2..]),
            None => usage(),
        },
        Some("compare") => match args.get(1) {
            Some(p) => cmd_compare(p.clone().as_str(), &args[2..]),
            None => usage(),
        },
        _ => usage(),
    }
}
