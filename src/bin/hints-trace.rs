//! `hints-trace` — generate, inspect and replay channel traces.
//!
//! The paper's methodology revolves around trace artifacts; this tool
//! makes them first-class on the command line:
//!
//! ```text
//! hints-trace gen --env office --motion mixed --secs 20 --seed 7 --out t.json
//! hints-trace info t.json
//! hints-trace replay t.json --protocol hintaware --workload tcp
//! hints-trace compare t.json                     # all six protocols
//! ```
//!
//! Run via `cargo run --release --bin hints-trace -- <args>`.
//!
//! Trace generation goes through the Scenario API (`ScenarioBuilder` +
//! `MotionSpec`). One behavioural note: `--motion mixed` now splits the
//! duration exactly in half at microsecond precision, so an *odd*
//! `--secs` yields halves of `secs/2` fractional seconds rather than the
//! old integer-second truncation (even `--secs` values are unchanged).

use sensor_hints::channel::Trace;
use sensor_hints::mac::BitRate;
use sensor_hints::rateadapt::scenario::{EnvironmentSpec, MotionSpec, ScenarioBuilder};
use sensor_hints::rateadapt::{
    HintStream, LinkSimulator, ProtocolParams, ProtocolRegistry, Workload,
};
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::SimDuration;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hints-trace gen --env <office|hallway|outdoor|vehicular|mesh-edge> \\\n            --motion <static|mobile|mixed|vehicle> --secs <n> --seed <n> --out <file>\n  hints-trace info <file>\n  hints-trace replay <file> --protocol <name> [--workload udp|tcp]\n  hints-trace compare <file> [--workload udp|tcp]"
    );
    ExitCode::from(2)
}

/// Pull `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Map the CLI motion names onto [`MotionSpec`]s.
fn motion_by_name(name: &str) -> Option<MotionSpec> {
    match name {
        "static" => Some(MotionSpec::Stationary),
        "mobile" => Some(MotionSpec::Walking {
            speed_mps: 1.4,
            heading_deg: 90.0,
        }),
        "mixed" => Some(MotionSpec::HalfAndHalf { static_first: true }),
        "vehicle" => Some(MotionSpec::Vehicle {
            speed_mps: 15.0,
            heading_deg: 0.0,
        }),
        _ => None,
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let (Some(env_s), Some(motion_s), Some(secs_s), Some(out)) = (
        flag(args, "--env"),
        flag(args, "--motion"),
        flag(args, "--secs"),
        flag(args, "--out"),
    ) else {
        return usage();
    };
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let Ok(secs) = secs_s.parse::<u64>() else {
        eprintln!("bad --secs {secs_s}");
        return ExitCode::from(2);
    };
    let Some(env) = EnvironmentSpec::from_name(&env_s) else {
        eprintln!("unknown environment {env_s}");
        return ExitCode::from(2);
    };
    let Some(motion) = motion_by_name(&motion_s) else {
        eprintln!("unknown motion {motion_s}");
        return ExitCode::from(2);
    };
    let trace = match ScenarioBuilder::new()
        .environment(env)
        .motion(motion)
        .duration(SimDuration::from_secs(secs))
        .seed(seed)
        .build_trace()
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("invalid scenario: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = trace.save(Path::new(&out)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {} slots, env {}, seed {seed}",
        trace.len(),
        trace.environment
    );
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Trace, ExitCode> {
    Trace::load(Path::new(path)).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn cmd_info(path: &str) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    println!("environment : {}", trace.environment);
    println!("seed        : {}", trace.seed);
    println!("duration    : {}", trace.duration());
    println!("slots       : {}", trace.len());
    println!("noise loss  : {:.3}", trace.noise_loss);
    let moving = trace.slots.iter().filter(|s| s.moving).count();
    println!(
        "moving      : {:.0}% of slots",
        100.0 * moving as f64 / trace.len().max(1) as f64
    );
    println!("delivery ratio by rate (all / static slots / moving slots):");
    for &r in &BitRate::ALL {
        println!(
            "  {:>7}: {:.3} / {:.3} / {:.3}",
            r.to_string(),
            trace.delivery_ratio(r),
            trace.delivery_ratio_when(r, false),
            trace.delivery_ratio_when(r, true),
        );
    }
    ExitCode::SUCCESS
}

fn workload_of(args: &[String]) -> Workload {
    match flag(args, "--workload").as_deref() {
        Some("tcp") => Workload::tcp(),
        _ => Workload::Udp,
    }
}

/// Replay one registered protocol over a loaded trace, using ground-
/// truth-with-detector-latency hints derived from the trace's own
/// movement flags.
fn replay(trace: &Trace, protocol: &str, workload: &Workload) -> f64 {
    // Rebuild a hint stream from the trace's stored ground truth with a
    // 100 ms oracle latency (the detector's measured class).
    let profile = profile_from_trace(trace);
    let hints = HintStream::oracle(&profile, trace.duration(), SimDuration::from_millis(100));
    let mut adapter = ProtocolRegistry::builtin_shared()
        .build(protocol, &ProtocolParams::default())
        .expect("caller resolved the protocol name");
    LinkSimulator::new(trace)
        .with_hints(&hints)
        .run(adapter.as_mut(), workload)
        .goodput_bps
}

/// Reconstruct a piecewise motion profile from the trace's moving flags
/// (speed is not needed by the movement hint).
fn profile_from_trace(trace: &Trace) -> MotionProfile {
    use sensor_hints::sensors::motion::{MotionSegment, MotionState};
    let slot = sensor_hints::channel::SLOT_DURATION;
    let mut segs: Vec<MotionSegment> = Vec::new();
    for s in &trace.slots {
        let state = if s.moving {
            MotionState::Walking {
                speed_mps: s.speed_mps.max(0.1),
            }
        } else {
            MotionState::Static
        };
        match segs.last_mut() {
            Some(last) if last.state.is_moving() == s.moving => last.duration += slot,
            _ => segs.push(MotionSegment {
                state,
                duration: slot,
                heading_deg: 0.0,
            }),
        }
    }
    if segs.is_empty() {
        segs.push(MotionSegment {
            state: MotionState::Static,
            duration: slot,
            heading_deg: 0.0,
        });
    }
    MotionProfile::new(segs)
}

fn cmd_replay(path: &str, args: &[String]) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let registry = ProtocolRegistry::builtin_shared();
    let Some(name) = flag(args, "--protocol")
        .and_then(|p| registry.canonical_name(&p))
        .map(str::to_string)
    else {
        eprintln!(
            "--protocol required (one of: {})",
            registry.names().join("|").to_ascii_lowercase()
        );
        return ExitCode::from(2);
    };
    let goodput = replay(&trace, &name, &workload_of(args));
    println!("{name}: {:.2} Mbit/s", goodput / 1e6);
    ExitCode::SUCCESS
}

fn cmd_compare(path: &str, args: &[String]) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let workload = workload_of(args);
    println!("{:<12} {:>12}", "protocol", "Mbit/s");
    for name in ProtocolRegistry::builtin_shared().names() {
        let goodput = replay(&trace, name, &workload);
        println!("{name:<12} {:>12.2}", goodput / 1e6);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => match args.get(1) {
            Some(p) => cmd_info(p),
            None => usage(),
        },
        Some("replay") => match args.get(1) {
            Some(p) => cmd_replay(p.clone().as_str(), &args[2..]),
            None => usage(),
        },
        Some("compare") => match args.get(1) {
            Some(p) => cmd_compare(p.clone().as_str(), &args[2..]),
            None => usage(),
        },
        _ => usage(),
    }
}
