//! Root package hosting workspace-level integration tests and examples.
//! The library surface lives in the `sensor-hints` crate (`crates/core`).
pub use sensor_hints as hints;
