//! Vehicular mesh route selection with heading hints (Sec. 5.1).
//!
//! Simulates an urban fleet, shows the Table 5.1 relationship between
//! heading difference and link duration, then picks routes with and
//! without the CTE metric and compares their lifetimes.
//!
//! ```text
//! cargo run --release --example vehicular_mesh
//! ```

use sensor_hints::sim::RngStream;
use sensor_hints::vehicular::links::{collect_links, table_5_1, TABLE_5_1_BUCKETS};
use sensor_hints::vehicular::mobility::Fleet;
use sensor_hints::vehicular::roads::RoadNetwork;
use sensor_hints::vehicular::routing::route_stability_experiment;

fn main() {
    // One network of 100 vehicles, 15 minutes of 1 Hz simulation.
    let root = RngStream::new(51);
    let mut net_rng = root.derive("net");
    let network = RoadNetwork::generate(15, 4000.0, &mut net_rng);
    let fleet = Fleet::new(network, 100, root.derive("fleet"));
    println!("Simulating 100 vehicles on 15 roads for 900 s...");
    let snaps = fleet.simulate(900);
    let records = collect_links(&snaps);
    let (medians, all_median, counts) = table_5_1(&records);

    println!();
    println!(
        "link duration by initial heading difference ({} links):",
        records.len()
    );
    for (i, &(lo, hi)) in TABLE_5_1_BUCKETS.iter().enumerate() {
        println!(
            "  [{:>3.0}°,{:>3.0}°): median {:>4.0} s  ({} links)",
            lo,
            hi.min(180.0),
            medians[i],
            counts[i]
        );
    }
    println!("  all links : median {all_median:>4.0} s");
    println!(
        "  => similar headings predict {:.1}x longer links (paper: 4-5x)",
        medians[0] / all_median
    );

    println!();
    println!("Route selection on a dense downtown fleet (300 vehicles):");
    let res = route_stability_experiment(8, 300, 900.0, 300, 10, 0xCAB);
    let (cm, hm) = res.means();
    println!(
        "  CTE (heading-hint) routes: mean lifetime {cm:.2} s over {} routes",
        res.cte_lifetimes.len()
    );
    println!("  hint-free min-hop routes : mean lifetime {hm:.2} s");
    println!(
        "  => {:.1}x more stable routes from a two-byte heading hint",
        cm / hm.max(1e-9)
    );
}
