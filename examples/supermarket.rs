//! The supermarket shopper (the paper's motivating example, Ch. 1):
//! "the smartphone user at the supermarket who alternates between standing
//! still in front of product displays and moving between aisles, all the
//! while streaming through the in-store network."
//!
//! We describe exactly that experiment as one `ScenarioBuilder` chain —
//! motion pattern, environment, workload, sensor-pipeline hints — then
//! race all six rate-adaptation protocols over the compiled scenario.
//! Run with:
//!
//! ```text
//! cargo run --release --example supermarket
//! ```

use sensor_hints::rateadapt::evaluate::ProtocolKind;
use sensor_hints::rateadapt::scenario::{MotionSpec, ScenarioBuilder};
use sensor_hints::rateadapt::Workload;
use sensor_hints::sim::SimDuration;

fn main() {
    // Six aisles: 8 s browsing + 8 s walking, repeated. `motion_sized`
    // derives the scenario duration from the motion pattern.
    let seed = 1u64;
    let scenario = ScenarioBuilder::new()
        .motion_sized(MotionSpec::Alternating {
            each: SimDuration::from_secs(8),
            n_pairs: 6,
        })
        .seed(seed)
        .workload(Workload::tcp())
        // Hints from the full synthetic-accelerometer + jerk-detector
        // pipeline: real detection latency included.
        .sensor_hints_seeded(seed ^ 0xA15)
        .build()
        .expect("valid supermarket scenario");
    let duration = scenario.spec().duration;

    println!(
        "Supermarket run: {} of alternating browse/walk in '{}'",
        duration,
        scenario.environment().name
    );
    println!();
    println!(
        "{:<12} {:>14} {:>12} {:>10}",
        "protocol", "goodput (Mbps)", "delivered", "attempts"
    );

    let mut results: Vec<(&str, f64)> = Vec::new();
    for kind in ProtocolKind::ALL {
        let mut adapter = kind.build(SimDuration::from_secs(10));
        let r = scenario.run_with(adapter.as_mut());
        println!(
            "{:<12} {:>14.2} {:>12} {:>10}",
            kind.name(),
            r.goodput_mbps(),
            r.packets_delivered,
            r.attempts
        );
        results.push((kind.name(), r.goodput_bps));
    }

    let hint = results
        .iter()
        .find(|r| r.0 == "HintAware")
        .expect("scored")
        .1;
    let sample = results
        .iter()
        .find(|r| r.0 == "SampleRate")
        .expect("scored")
        .1;
    println!();
    println!(
        "Hint-aware switching beats SampleRate by {:+.0}% on this shopper's \
         mixed-mobility session (paper's Fig. 3-5 band: +23%..+52%).",
        100.0 * (hint / sample - 1.0)
    );
}
