//! The supermarket shopper (the paper's motivating example, Ch. 1):
//! "the smartphone user at the supermarket who alternates between standing
//! still in front of product displays and moving between aisles, all the
//! while streaming through the in-store network."
//!
//! We build exactly that motion pattern, generate a channel trace, and race
//! all six rate-adaptation protocols over it, with hints produced by the
//! real sensor pipeline. Run with:
//!
//! ```text
//! cargo run --release --example supermarket
//! ```

use sensor_hints::channel::{Environment, Trace};
use sensor_hints::rateadapt::evaluate::ProtocolKind;
use sensor_hints::rateadapt::{HintStream, LinkSimulator, Workload};
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::SimDuration;

fn main() {
    // Six aisles: 8 s browsing + 8 s walking, repeated.
    let profile = MotionProfile::alternating(SimDuration::from_secs(8), 6);
    let duration = profile.duration();
    let env = Environment::office();

    println!(
        "Supermarket run: {} of alternating browse/walk in '{}'",
        duration, env.name
    );
    println!();
    println!(
        "{:<12} {:>14} {:>12} {:>10}",
        "protocol", "goodput (Mbps)", "delivered", "attempts"
    );

    let mut results: Vec<(&str, f64)> = Vec::new();
    for seed in [1u64] {
        let trace = Trace::generate(&env, &profile, duration, seed);
        // Hints from the full synthetic-accelerometer + jerk-detector
        // pipeline: real detection latency included.
        let hints = HintStream::from_sensors(&profile, duration, seed ^ 0xA15);
        for kind in ProtocolKind::ALL {
            let mut adapter = kind.build(SimDuration::from_secs(10));
            let r = LinkSimulator::new(&trace)
                .with_hints(&hints)
                .run(adapter.as_mut(), Workload::tcp());
            println!(
                "{:<12} {:>14.2} {:>12} {:>10}",
                kind.name(),
                r.goodput_mbps(),
                r.packets_delivered,
                r.attempts
            );
            results.push((kind.name(), r.goodput_bps));
        }
    }

    let hint = results
        .iter()
        .find(|r| r.0 == "HintAware")
        .expect("scored")
        .1;
    let sample = results
        .iter()
        .find(|r| r.0 == "SampleRate")
        .expect("scored")
        .1;
    println!();
    println!(
        "Hint-aware switching beats SampleRate by {:+.0}% on this shopper's \
         mixed-mobility session (paper's Fig. 3-5 band: +23%..+52%).",
        100.0 * (hint / sample - 1.0)
    );
}
