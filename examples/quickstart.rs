//! Quickstart: the sensor-hints pipeline in one minute.
//!
//! A phone alternates between standing still and walking. Its synthetic
//! accelerometer feeds the paper's jerk detector; the hint service tracks
//! the movement hint; the hint field it would stuff into outgoing frames
//! mirrors it. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sensor_hints::device::HintedDevice;
use sensor_hints::sensors::MotionProfile;
use sensor_hints::sim::{SimDuration, SimTime};

fn main() {
    // Ground truth: still 5 s, walk 5 s, still 5 s.
    let profile = MotionProfile::static_move_static(
        SimDuration::from_secs(5),
        SimDuration::from_secs(5),
        SimDuration::from_secs(5),
    );
    let mut phone = HintedDevice::new(profile.clone(), 2026);

    println!("time   truth    movement-hint  heading-hint   frame-hint-bytes");
    for half_secs in 0..30u64 {
        let t = SimTime::from_micros(half_secs * 500_000);
        phone.advance_to(t);
        let hints = phone.hints();
        let field = phone.outgoing_hint_field();
        println!(
            "{:>5}  {:>7}  {:>13}  {:>12}  {:>16}",
            format!("{t}"),
            if profile.is_moving_at(t) {
                "moving"
            } else {
                "static"
            },
            match hints.movement {
                Some(m) if m.is_moving() => "moving",
                Some(_) => "static",
                None => "-",
            },
            hints
                .heading
                .map(|h| format!("{:.0}°", h.degrees()))
                .unwrap_or_else(|| "-".into()),
            field.wire_overhead_bytes(),
        );
    }

    println!();
    println!(
        "The detector answers within ~100-300 ms of each transition, from raw \
         2 ms accelerometer reports, with no per-device calibration — the \
         architecture of Ch. 2 of the paper."
    );
}
