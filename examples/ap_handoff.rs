//! Hint-aware access point policies (Sec. 5.2).
//!
//! Three mini-demos: association by predicted lifetime, mobile-favouring
//! scheduling, and the Fig. 5-1 disassociation pathology with its fix.
//!
//! ```text
//! cargo run --release --example ap_handoff
//! ```

use sensor_hints::ap::association::{
    choose_ap, realized_lifetime_s, ApCandidate, AssociationPolicy, ClientMotion,
};
use sensor_hints::ap::disassociation::{fig_5_1_scenario, DisassociationPolicy, FairnessModel};
use sensor_hints::ap::scheduler::{simulate_two_client_schedule, SchedulePolicy};
use sensor_hints::mac::BitRate;
use sensor_hints::sensors::gps::Position;
use sensor_hints::sim::SimDuration;

fn main() {
    // --- 1. Adaptive association -----------------------------------------
    println!("1) Association: walking east past AP A toward AP B");
    let behind = ApCandidate {
        id: 0,
        position: Position { x: -20.0, y: 0.0 },
        rssi_dbm: -45.0,
        coverage_m: 100.0,
    };
    let ahead = ApCandidate {
        id: 1,
        position: Position { x: 80.0, y: 0.0 },
        rssi_dbm: -55.0,
        coverage_m: 100.0,
    };
    let client = ClientMotion {
        position: Position { x: 0.0, y: 0.0 },
        moving: true,
        heading_deg: 90.0,
        speed_mps: 1.4,
    };
    for (policy, name) in [
        (AssociationPolicy::StrongestSignal, "strongest-signal"),
        (AssociationPolicy::HintAware, "hint-aware      "),
    ] {
        let pick = choose_ap(&[behind, ahead], &client, policy).expect("an AP");
        let ap = if pick == 0 { &behind } else { &ahead };
        println!(
            "   {name} picks AP {pick} ({} dBm) -> association lasts {:.0} s",
            ap.rssi_dbm,
            realized_lifetime_s(ap, &client, 600.0)
        );
    }

    // --- 2. Adaptive scheduling ------------------------------------------
    println!();
    println!("2) Scheduling: static client with a finite batch + 10 s mobile visitor");
    for (policy, name) in [
        (SchedulePolicy::EqualShare, "equal share     "),
        (
            SchedulePolicy::FavorMobile { mobile_share: 0.9 },
            "favor mobile 90%",
        ),
    ] {
        let out = simulate_two_client_schedule(policy, BitRate::R54, 20_000, 10.0, 60.0);
        println!(
            "   {name}: aggregate {} pkts (mobile {}, static batch done at {:.1} s)",
            out.aggregate(),
            out.mobile_delivered,
            out.static_finish_s
        );
    }

    // --- 3. Adaptive disassociation (Fig. 5-1) ----------------------------
    println!();
    println!("3) Disassociation: client departs at 35 s (static client's goodput)");
    let timeout = DisassociationPolicy::Timeout {
        prune_after: SimDuration::from_secs(10),
    };
    let hint = DisassociationPolicy::HintAware {
        probe_interval: SimDuration::from_secs(1),
    };
    let frame = fig_5_1_scenario(timeout, FairnessModel::FrameLevel);
    let fixed = fig_5_1_scenario(hint, FairnessModel::FrameLevel);
    println!(
        "   10 s-timeout AP : before {:.1} Mbps, collapse window {:.1} Mbps, after {:.1} Mbps",
        frame.mean_goodput_mbps(0, 5, 30),
        frame.mean_goodput_mbps(0, 36, 44),
        frame.mean_goodput_mbps(0, 48, 60),
    );
    println!(
        "   hint-aware AP   : before {:.1} Mbps, same window  {:.1} Mbps (no collapse)",
        fixed.mean_goodput_mbps(0, 5, 30),
        fixed.mean_goodput_mbps(0, 36, 44),
    );
}
