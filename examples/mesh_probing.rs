//! Hint-aware topology maintenance on a mesh link (Ch. 4).
//!
//! A mesh node estimates the delivery probability of a marginal link while
//! its neighbour alternates between static and mobile. We compare three
//! probing strategies — always-slow, always-fast, and the paper's
//! hint-adaptive prober — on estimate accuracy *and* probe bandwidth.
//! The trace and the sensor-pipeline hint stream both come from one
//! compiled `Scenario`.
//!
//! ```text
//! cargo run --release --example mesh_probing
//! ```

use sensor_hints::mac::BitRate;
use sensor_hints::rateadapt::scenario::{EnvironmentSpec, MotionSpec, ScenarioBuilder};
use sensor_hints::sim::SimDuration;
use sensor_hints::topology::adaptive::{fixed_rate_run, AdaptiveProber};
use sensor_hints::topology::delivery::{actual_series, held_tracking_error};
use sensor_hints::topology::ProbeStream;

fn main() {
    let scenario = ScenarioBuilder::new()
        .environment(EnvironmentSpec::MeshEdge)
        .motion_sized(MotionSpec::Alternating {
            each: SimDuration::from_secs(15),
            n_pairs: 3,
        })
        .seed(99)
        .sensor_hints_seeded(0x99)
        .build()
        .expect("valid mesh-probing scenario");
    let duration = scenario.spec().duration;
    println!(
        "Mesh link '{}', {} alternating static/mobile neighbour",
        scenario.environment().name,
        duration
    );

    let stream = ProbeStream::from_trace(scenario.trace(), BitRate::R6, 99);
    let hints = scenario.hints().expect("sensor hints configured");
    let actual = actual_series(&stream);
    let step = SimDuration::from_millis(100);

    println!();
    println!(
        "{:<22} {:>8} {:>16}",
        "strategy", "probes", "tracking error"
    );

    let slow = fixed_rate_run(&stream, 1.0);
    let slow_err = held_tracking_error(&slow, &actual, step).mean();
    let slow_probes = (duration.as_secs_f64() * 1.0) as u64;
    println!(
        "{:<22} {:>8} {:>16.3}",
        "fixed 1 probe/s", slow_probes, slow_err
    );

    let fast = fixed_rate_run(&stream, 10.0);
    let fast_err = held_tracking_error(&fast, &actual, step).mean();
    let fast_probes = (duration.as_secs_f64() * 10.0) as u64;
    println!(
        "{:<22} {:>8} {:>16.3}",
        "fixed 10 probes/s", fast_probes, fast_err
    );

    let run = AdaptiveProber::new().run(&stream, |t| hints.query(t));
    let adaptive_err = held_tracking_error(&run.estimates, &actual, step).mean();
    println!(
        "{:<22} {:>8} {:>16.3}",
        "hint-adaptive (1<->10)", run.probes_sent, adaptive_err
    );

    println!();
    println!(
        "The adaptive prober gets within {:.0}% of always-fast accuracy for \
         {:.1}x less probe traffic — probing fast only while the movement \
         hint is up (Sec. 4.2).",
        100.0 * (adaptive_err - fast_err).abs() / fast_err.max(1e-9),
        fast_probes as f64 / run.probes_sent as f64
    );
}
